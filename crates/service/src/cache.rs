//! The sharded, concurrency-safe `(Q, Σ)` chase-result cache.
//!
//! ## What is cached
//!
//! One entry per α-equivalence class of chase inputs: the key is the
//! renaming-invariant fingerprint of ([`crate::canon::query_fingerprint`])
//! the query combined with the context fingerprint (Σ, semantics,
//! set-valuedness flags, budgets). The value is the **terminal outcome** —
//! the sound-chase result (terminal query, failure flag, step count,
//! accumulated renaming, trace) or the [`ChaseError`] (budget exhaustion /
//! query growth), which is just as expensive to rediscover. Only
//! *cacheable* errors are stored ([`ChaseError::is_cacheable`]): budget
//! exhaustion and query growth are deterministic facts of `(Q, Σ, budget)`,
//! whereas a deadline or cancellation says nothing about the input — a
//! guarded run that dies must not poison the cache for the retry that
//! follows it.
//!
//! ## Soundness of the key
//!
//! A fingerprint match alone is *not* trusted: every probe is confirmed
//! with an exact [`find_isomorphism`] check against the entry's stored
//! representative query, and distinct non-isomorphic queries sharing a
//! fingerprint coexist as separate entries in the same bucket. Together
//! with the α-commutation of the sound chase (renaming the input renames
//! the output; see [`crate::canon`]) this makes a hit semantically
//! indistinguishable from a fresh chase: the cached terminal result is
//! **replayed** through the witnessing bijection — terminal-query
//! variables that originate in the representative are mapped back onto the
//! probe's variables, chase-introduced variables are renamed fresh apart
//! from the probe, and the accumulated renaming (the input to the
//! assignment-fixing path, Definition 4.3) is transported the same way.
//!
//! ## Concurrency
//!
//! The cache is sharded by key; each shard is an independent mutex, so
//! worker threads of a [`crate::batch::BatchSession`] rarely contend.
//! Chases run *outside* any lock — a racing duplicate computation is
//! possible (and harmless: last writer wins, the loser's result is simply
//! returned uncached). Hit/miss/eviction counters are atomics. Eviction is
//! FIFO per shard once the shard exceeds its capacity share. Shard locks
//! recover from poisoning: no chase runs under a lock, so a panic caught
//! mid-critical-section can only have interrupted bookkeeping whose
//! invariants are re-established on the next insert, and a solver that
//! isolates panicking requests must not lose its cache to them.

pub mod persist;

use crate::canon::{cache_key, query_fingerprint, ChaseContext};
use eqsql_chase::set_chase::Chased;
use eqsql_chase::{sound_chase_prepared_opts, ChaseConfig, ChaseError, EngineOpts, SoundChased};
use eqsql_core::SoundChaser;
use eqsql_cq::{find_isomorphism, CqQuery, Subst, Term, Var, VarSupply};
use eqsql_deps::{regularize_set, DependencySet};
use eqsql_relalg::{Schema, Semantics};
use persist::{PersistConfig, PersistStats, PersistTier};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a caught panic poisoned it (see the
/// module docs on why that is sound here).
pub(crate) fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sizing knobs for [`ChaseCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Number of independent shards (each its own mutex).
    pub shards: usize,
    /// Total entry capacity across all shards; exceeding a shard's
    /// per-shard share evicts its oldest entries (FIFO).
    pub capacity: usize,
    /// Optional disk tier ([`persist`]): entries survive process restarts
    /// and memory-tier evictions. `None` keeps the cache memory-only.
    pub persist: Option<PersistConfig>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { shards: 16, capacity: 4096, persist: None }
    }
}

/// Distinct Σs memoized in regularized form before the memo is reset.
const SIGMA_MEMO_CAP: usize = 256;

/// A stored terminal chase result, expressed over the representative
/// query's variables. The per-step trace is deliberately *not* stored:
/// it is pure diagnostics (never an input to a decision), it would pin
/// O(steps) heap strings per resident entry, and a replayed trace would
/// carry the representative's variable names anyway — replayed results
/// report an empty trace instead.
#[derive(Clone, Debug)]
pub(crate) struct StoredChase {
    pub(crate) query: CqQuery,
    pub(crate) failed: bool,
    pub(crate) steps: usize,
    pub(crate) renaming: Subst,
    pub(crate) sigma_regularized: Arc<DependencySet>,
}

#[derive(Clone, Debug)]
struct Entry {
    /// Exact context key (fingerprint plus the material it hashes):
    /// confirmed field-for-field on every probe, so a fingerprint
    /// collision between contexts costs a failed match, never a verdict
    /// computed under the wrong Σ/semantics/budget.
    ctx: ChaseContext,
    /// The representative query this entry was computed on.
    representative: CqQuery,
    /// Terminal result or terminal error — both are cache-worthy. The
    /// result sits behind an `Arc` so a hit clones a pointer inside the
    /// shard lock, not an exponential-size terminal query.
    outcome: Result<Arc<StoredChase>, ChaseError>,
    /// Insertion id, for FIFO eviction.
    id: u64,
}

#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Vec<Entry>>,
    order: VecDeque<(u64, u64)>,
    entries: usize,
}

/// Point-in-time cache counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from a stored entry.
    pub hits: u64,
    /// Probes that fell through to the chase engine.
    pub misses: u64,
    /// Entries discarded to capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Resident entries per shard, in shard order. Keys shard by
    /// fingerprint, so a skewed distribution here (one shard holding most
    /// entries while others sit empty) is the observable symptom of
    /// fingerprint clustering — worth knowing before blaming capacity.
    pub shard_entries: Vec<usize>,
    /// Disk-tier counters (all zero when persistence is off).
    pub persist: PersistStats,
}

/// Where one chase probe was answered. The interesting split is
/// memory-vs-disk: a disk hit saves the chase but still pays
/// deserialization and promotion, so a workload whose "hits" are mostly
/// disk hits warms very differently from one riding the resident tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from the resident memory tier.
    MemoryHit,
    /// Answered from the disk tier (and promoted into memory).
    DiskHit,
    /// A fresh chase ran (including runs whose transient error was
    /// deliberately left uncached).
    Miss,
}

impl CacheOutcome {
    /// Did the probe avoid a fresh chase?
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheOutcome::Miss)
    }
}

/// The sharded `(Q, Σ)` chase-result cache. See the module docs.
pub struct ChaseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    next_id: AtomicU64,
    /// Rendered Σ → (regularized Σ, its rendered text), so repeated
    /// chases over one Σ regularize and render it once. Keyed exactly (by
    /// text) and bounded by [`SIGMA_MEMO_CAP`].
    sigma_memo: Mutex<HashMap<String, (Arc<DependencySet>, Arc<str>)>>,
    /// The disk tier, when [`CacheConfig::persist`] is set. Memory misses
    /// fall through to it; fresh terminal results are appended to it.
    persist: Option<PersistTier>,
}

impl Default for ChaseCache {
    fn default() -> Self {
        ChaseCache::new(CacheConfig::default())
    }
}

impl ChaseCache {
    /// An empty cache with the given sizing. If a persistence tier is
    /// configured but fails to open, the cache degrades to memory-only
    /// (with `persist.io_errors = 1` in [`ChaseCache::stats`]) rather than
    /// failing — callers that must know use [`ChaseCache::open`].
    pub fn new(config: CacheConfig) -> ChaseCache {
        let tier = config
            .persist
            .as_ref()
            .map(|p| PersistTier::open(p).unwrap_or_else(|_| PersistTier::unavailable()));
        ChaseCache::with_tier(&config, tier)
    }

    /// [`ChaseCache::new`], but surfacing a persistence-tier open failure
    /// (an uncreatable directory, unopenable files) instead of degrading.
    /// Corrupt file *content* is never an error — recovery keeps the valid
    /// prefix and counts the damage (see [`persist`]).
    pub fn open(config: CacheConfig) -> io::Result<ChaseCache> {
        let tier = match &config.persist {
            Some(p) => Some(PersistTier::open(p)?),
            None => None,
        };
        Ok(ChaseCache::with_tier(&config, tier))
    }

    fn with_tier(config: &CacheConfig, persist: Option<PersistTier>) -> ChaseCache {
        let shards = config.shards.max(1);
        ChaseCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: (config.capacity / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            sigma_memo: Mutex::new(HashMap::new()),
            persist,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let shard_entries: Vec<usize> =
            self.shards.iter().map(|s| lock_recovering(s).entries).collect();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: shard_entries.iter().sum(),
            shard_entries,
            persist: self.persist.as_ref().map(PersistTier::stats).unwrap_or_default(),
        }
    }

    /// The regularized form of Σ, computed once per distinct Σ. The memo
    /// is dropped wholesale past `SIGMA_MEMO_CAP` distinct Σs —
    /// regularization is cheap to redo, unbounded growth in a long-running
    /// server is not.
    pub fn regularized(&self, sigma: &DependencySet) -> Arc<DependencySet> {
        self.regularized_with_text(sigma).0
    }

    /// [`ChaseCache::regularized`] plus the regularized set's rendered
    /// text (the expensive half of building a [`ChaseContext`]), both
    /// memoized, so the stateless [`SoundChaser`] path pays one render per
    /// distinct Σ rather than two per chase.
    pub(crate) fn regularized_with_text(
        &self,
        sigma: &DependencySet,
    ) -> (Arc<DependencySet>, Arc<str>) {
        let text = sigma.to_string();
        let mut memo = lock_recovering(&self.sigma_memo);
        if memo.len() >= SIGMA_MEMO_CAP && !memo.contains_key(&text) {
            memo.clear();
        }
        let (reg, reg_text) = memo.entry(text).or_insert_with(|| {
            let reg = Arc::new(regularize_set(sigma));
            let reg_text: Arc<str> = reg.to_string().into();
            (reg, reg_text)
        });
        (Arc::clone(reg), Arc::clone(reg_text))
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks `q` up under the given context; on a match returns the
    /// stored outcome together with the probe→representative bijection.
    fn lookup(
        &self,
        key: u64,
        ctx: &ChaseContext,
        q: &CqQuery,
    ) -> Option<(Result<Arc<StoredChase>, ChaseError>, HashMap<Var, Var>)> {
        let shard = lock_recovering(self.shard_of(key));
        let bucket = shard.buckets.get(&key)?;
        for entry in bucket {
            if !entry.ctx.same(ctx) {
                continue;
            }
            if let Some(map) = find_isomorphism(q, &entry.representative) {
                return Some((entry.outcome.clone(), map));
            }
        }
        None
    }

    fn insert(
        &self,
        key: u64,
        ctx: ChaseContext,
        q: &CqQuery,
        outcome: Result<Arc<StoredChase>, ChaseError>,
    ) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_recovering(self.shard_of(key));
        let bucket = shard.buckets.entry(key).or_default();
        // Racing duplicate? Keep the resident entry: evicting it would
        // invalidate nothing, but skipping keeps the order queue exact.
        if bucket
            .iter()
            .any(|e| e.ctx.same(&ctx) && find_isomorphism(q, &e.representative).is_some())
        {
            return;
        }
        bucket.push(Entry { ctx, representative: q.clone(), outcome, id });
        shard.order.push_back((key, id));
        shard.entries += 1;
        while shard.entries > self.per_shard_capacity {
            let Some((old_key, old_id)) = shard.order.pop_front() else { break };
            let mut removed = false;
            if let Some(bucket) = shard.buckets.get_mut(&old_key) {
                if let Some(pos) = bucket.iter().position(|e| e.id == old_id) {
                    bucket.remove(pos);
                    removed = true;
                }
                if bucket.is_empty() {
                    shard.buckets.remove(&old_key);
                }
            }
            if removed {
                shard.entries -= 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Replays a stored outcome for `probe`, where `map` is the bijection
    /// from `probe`'s variables onto the representative's.
    fn replay(probe: &CqQuery, stored: &StoredChase, map: &HashMap<Var, Var>) -> SoundChased {
        // Invert the canonicalizing map, then extend it over every variable
        // of the stored terminal state: representative-originated variables
        // go back through the inverse, chase-introduced ones are renamed
        // fresh *apart from the probe* (their stored names may collide with
        // probe variables that map elsewhere).
        let inv: HashMap<Var, Var> = map.iter().map(|(p, r)| (*r, *p)).collect();
        let mut supply = VarSupply::avoiding([probe]);
        let mut sub = Subst::new();
        let cover = |v: Var, sub: &mut Subst, supply: &mut VarSupply| {
            if sub.get(v).is_none() {
                let image = match inv.get(&v) {
                    Some(p) => *p,
                    None => supply.fresh(v.name()),
                };
                sub.set(v, Term::Var(image));
            }
        };
        for v in stored.query.all_vars() {
            cover(v, &mut sub, &mut supply);
        }
        for (v, t) in stored.renaming.sorted_pairs() {
            cover(v, &mut sub, &mut supply);
            if let Term::Var(w) = t {
                cover(w, &mut sub, &mut supply);
            }
        }
        let mut query = stored.query.apply(&sub);
        query.name = probe.name;
        let renaming =
            Subst::from_pairs(stored.renaming.sorted_pairs().into_iter().map(|(v, t)| {
                let v2 = match sub.get(v) {
                    Some(Term::Var(w)) => *w,
                    _ => v,
                };
                (v2, sub.apply_term(&t))
            }));
        SoundChased {
            query: query.clone(),
            failed: stored.failed,
            steps: stored.steps,
            sigma_regularized: Arc::clone(&stored.sigma_regularized),
            chased: Chased {
                query,
                failed: stored.failed,
                steps: stored.steps,
                renaming,
                // Not stored (see StoredChase): replayed results carry an
                // empty trace.
                trace: Vec::new(),
            },
        }
    }
}

impl ChaseCache {
    /// The cache's core path, with the per-Σ work hoisted out: `ctx` is
    /// the [`crate::canon::context_fingerprint`] and `sigma_reg` the regularized Σ, both
    /// computed once per session rather than per chase. The generic
    /// [`SoundChaser`] impl derives them on every call; batch sessions use
    /// this directly so the *hit* path touches Σ not at all.
    pub fn chase_keyed(
        &self,
        ctx: &ChaseContext,
        sigma_reg: &Arc<DependencySet>,
        sem: Semantics,
        q: &CqQuery,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError> {
        self.chase_keyed_counted(ctx, sigma_reg, sem, q, schema, config).0
    }

    /// [`ChaseCache::chase_keyed`], additionally reporting whether the
    /// probe hit. Batch sessions use the flag for *exact* per-run hit/miss
    /// attribution — the global counters mix in every concurrent session
    /// sharing the cache.
    pub fn chase_keyed_counted(
        &self,
        ctx: &ChaseContext,
        sigma_reg: &Arc<DependencySet>,
        sem: Semantics,
        q: &CqQuery,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> (Result<SoundChased, ChaseError>, bool) {
        self.chase_keyed_counted_opts(
            ctx,
            sigma_reg,
            sem,
            q,
            schema,
            config,
            &EngineOpts::default(),
        )
    }

    /// [`ChaseCache::chase_keyed_counted`] with explicit [`EngineOpts`].
    /// The caller's `ctx` must have been built with the matching
    /// `delta_seeding` flag — delta-seeded terminals are only Σ-equivalent
    /// to reference terminals, so the two populations must not share cache
    /// entries (the flag is part of the context key for exactly this
    /// reason; probe counts never change results and are not keyed).
    #[allow(clippy::too_many_arguments)]
    pub fn chase_keyed_counted_opts(
        &self,
        ctx: &ChaseContext,
        sigma_reg: &Arc<DependencySet>,
        sem: Semantics,
        q: &CqQuery,
        schema: &Schema,
        config: &ChaseConfig,
        opts: &EngineOpts,
    ) -> (Result<SoundChased, ChaseError>, bool) {
        let (result, outcome) =
            self.chase_keyed_attributed(ctx, sigma_reg, sem, q, schema, config, opts);
        (result, outcome.is_hit())
    }

    /// [`ChaseCache::chase_keyed_counted_opts`], reporting *where* the
    /// probe was answered ([`CacheOutcome`]) instead of a bare hit flag —
    /// the attribution point for per-request tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn chase_keyed_attributed(
        &self,
        ctx: &ChaseContext,
        sigma_reg: &Arc<DependencySet>,
        sem: Semantics,
        q: &CqQuery,
        schema: &Schema,
        config: &ChaseConfig,
        opts: &EngineOpts,
    ) -> (Result<SoundChased, ChaseError>, CacheOutcome) {
        let key = cache_key(query_fingerprint(q), ctx.fingerprint());
        if let Some((outcome, map)) = self.lookup(key, ctx, q) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (outcome.map(|stored| Self::replay(q, &stored, &map)), CacheOutcome::MemoryHit);
        }
        // Memory miss: the disk tier may still know this entry (from a
        // previous process, or evicted under capacity pressure). A disk
        // hit counts as a cache hit, is promoted into the memory tier
        // (keyed by its own representative — isomorphic to `q`, so the
        // fingerprints agree) and is *not* re-appended: it is durable
        // already.
        if let Some(tier) = &self.persist {
            if let Some(hit) = tier.lookup(key, ctx, q) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let result = hit.outcome.clone().map(|stored| Self::replay(q, &stored, &hit.map));
                self.insert(key, ctx.clone(), &hit.representative, hit.outcome);
                return (result, CacheOutcome::DiskHit);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = sound_chase_prepared_opts(sem, q, Arc::clone(sigma_reg), schema, config, opts);
        let stored = match &result {
            Ok(r) => Ok(Arc::new(StoredChase {
                query: r.query.clone(),
                failed: r.failed,
                steps: r.steps,
                renaming: r.chased.renaming.clone(),
                sigma_regularized: Arc::clone(sigma_reg),
            })),
            Err(e) if e.is_cacheable() => Err(e.clone()),
            // A deadline/cancellation is a fact about this run, not about
            // (Q, Σ): memoizing it would make the retry fail from cache.
            Err(_) => return (result, CacheOutcome::Miss),
        };
        if let Some(tier) = &self.persist {
            let outcome = match &stored {
                Ok(s) => Ok(persist::PersistedChase {
                    query: s.query.clone(),
                    failed: s.failed,
                    steps: s.steps,
                    renaming: s.renaming.clone(),
                }),
                Err(e) => Err(e.clone()),
            };
            tier.append(
                key,
                &persist::PersistRecord {
                    ctx: ctx.clone(),
                    sigma: Arc::clone(sigma_reg),
                    representative: q.clone(),
                    outcome,
                },
            );
        }
        self.insert(key, ctx.clone(), q, stored);
        (result, CacheOutcome::Miss)
    }
}

impl SoundChaser for ChaseCache {
    fn sound_chase(
        &self,
        sem: Semantics,
        q: &CqQuery,
        sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError> {
        let (sigma_reg, reg_text) = self.regularized_with_text(sigma);
        let ctx = ChaseContext::with_text(sem, reg_text, schema, config, false);
        self.chase_keyed(&ctx, &sigma_reg, sem, q, schema, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::{are_isomorphic, parse_query};
    use eqsql_deps::parse_dependencies;

    fn cfg() -> ChaseConfig {
        ChaseConfig::default()
    }

    fn fixture() -> (DependencySet, Schema) {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("s", 2), ("t", 3)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        (sigma, schema)
    }

    #[test]
    fn hit_replays_isomorphic_result_over_probe_vars() {
        let (sigma, schema) = fixture();
        let cache = ChaseCache::default();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        let fresh = cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &cfg()).unwrap();
        assert_eq!(cache.stats().misses, 1);

        // α-renamed probe: hits, and the replayed result is the fresh chase
        // of the probe up to isomorphism, expressed over the probe's head.
        let renamed = parse_query("q(A) :- p(A,B)").unwrap();
        let replayed =
            cache.sound_chase(Semantics::Set, &renamed, &sigma, &schema, &cfg()).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(replayed.steps, fresh.steps);
        assert!(are_isomorphic(&replayed.query, &fresh.query));
        assert_eq!(replayed.query.head, renamed.head, "head must be over probe variables");
        // Chase-fresh variables must not collide with probe variables.
        let direct =
            eqsql_chase::sound_chase(Semantics::Set, &renamed, &sigma, &schema, &cfg()).unwrap();
        assert!(are_isomorphic(&replayed.query, &direct.query));
    }

    #[test]
    fn probe_vars_colliding_with_chase_fresh_names_are_kept_apart() {
        // The representative's chase introduces fresh vars named Z_1, W_2…;
        // a probe that *owns* such names must not capture them.
        let (sigma, schema) = fixture();
        let cache = ChaseCache::default();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &cfg()).unwrap();
        let tricky = parse_query("q(Z_1) :- p(Z_1,W_1)").unwrap();
        let replayed = cache.sound_chase(Semantics::Set, &tricky, &sigma, &schema, &cfg()).unwrap();
        let direct =
            eqsql_chase::sound_chase(Semantics::Set, &tricky, &sigma, &schema, &cfg()).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert!(
            are_isomorphic(&replayed.query, &direct.query),
            "replayed {} vs direct {}",
            replayed.query,
            direct.query
        );
    }

    #[test]
    fn errors_are_cached_outcomes() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let schema = Schema::all_bags(&[("e", 2)]);
        let cache = ChaseCache::default();
        let q = parse_query("q(X) :- e(X,Y)").unwrap();
        let small = ChaseConfig::with_max_steps(13);
        let e1 = cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &small).unwrap_err();
        let q2 = parse_query("q(U) :- e(U,V)").unwrap();
        let e2 = cache.sound_chase(Semantics::Set, &q2, &sigma, &schema, &small).unwrap_err();
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        assert_eq!(s.shard_entries.len(), CacheConfig::default().shards);
        assert_eq!(s.shard_entries.iter().sum::<usize>(), s.entries);
    }

    #[test]
    fn semantics_and_budget_partition_the_cache() {
        let (sigma, schema) = fixture();
        let cache = ChaseCache::default();
        let q = parse_query("q(X) :- p(X,Y)").unwrap();
        cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &cfg()).unwrap();
        cache.sound_chase(Semantics::Bag, &q, &sigma, &schema, &cfg()).unwrap();
        cache
            .sound_chase(Semantics::Set, &q, &sigma, &schema, &ChaseConfig::with_max_steps(99))
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 3));
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
        let cache = ChaseCache::new(CacheConfig { shards: 1, capacity: 2, ..Default::default() });
        for body in ["a(X)", "a(X), c(X)", "a(X), c(X), c(X)"] {
            let q = parse_query(&format!("q(X) :- {body}")).unwrap();
            cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &cfg()).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (2, 1));
        // The first entry was evicted: probing it again misses.
        let q = parse_query("q(X) :- a(X)").unwrap();
        cache.sound_chase(Semantics::Set, &q, &sigma, &schema, &cfg()).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }
}
