//! The [`Solver`]: one typed façade over every decision procedure.
//!
//! The paper contributes a *family* of chase-based decision procedures —
//! Σ-equivalence under three semantics (Theorems 2.2/6.1/6.2), set
//! containment, Σ-minimality (Definition 3.1), the C&B reformulation
//! family (Appendix A, §6.3), bag containment (Appendix D), dependency
//! implication and the instance chase. Historically each lived behind its
//! own free function with its own parameter list and its own error shape.
//! The Solver collapses all of that into one entry point:
//!
//! ```
//! use eqsql_cq::parse_query;
//! use eqsql_deps::parse_dependencies;
//! use eqsql_relalg::Schema;
//! use eqsql_service::{Answer, Request, RequestOpts, Solver};
//!
//! let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
//! let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
//! let solver = Solver::builder(sigma, schema).build();
//!
//! let req = Request::Equivalent {
//!     q1: parse_query("q(X) :- a(X)").unwrap(),
//!     q2: parse_query("q(X) :- a(X), b(X)").unwrap(),
//!     opts: RequestOpts::default(),
//! };
//! let verdict = solver.decide(&req).unwrap();
//! assert!(matches!(verdict.answer, Answer::Equivalent { .. }));
//! // Every verdict carries machine-checkable evidence.
//! verdict.verify(&req, solver.sigma(), solver.schema()).unwrap();
//! ```
//!
//! A [`SolverBuilder`] captures everything that used to be passed
//! piecemeal — default semantics, chase budgets, engine knobs
//! ([`EngineOpts`]: delta seeding, parallel probes), cache configuration
//! and worker-thread count. A [`Request`] names the decision (with
//! optional per-request semantics/budget overrides), and the answer is a
//! [`Verdict`]: a typed [`Answer`] carrying the certificate the paper's
//! theorems say must exist (witnessing homomorphisms per containment
//! direction, the separating database on inequivalence, the reformulated
//! queries for C&B) plus per-decision chase/cache statistics. Failures
//! surface through the unified [`crate::Error`] taxonomy.
//!
//! Every chase the Solver issues is routed through its shared
//! [`ChaseCache`], so streams of related requests (the C&B backchase, a
//! minimality sweep, a batch of equivalence probes over one Σ) share
//! terminal chase results automatically.

use crate::cache::{CacheConfig, ChaseCache};
use crate::canon::ChaseContext;
use crate::error::Error;
use crate::evidence::{
    BagContainmentCertificate, ContainmentCertificate, Counterexample, EquivalenceCertificate,
    ImplicationCounterexample,
};
use eqsql_chase::instance::chase_database_guarded;
use eqsql_chase::{Cancel, ChaseConfig, ChaseError, EngineOpts, FaultPlan, RunGuard, SoundChased};
use eqsql_core::bag_containment::{find_non_containment_witness, onto_containment_mapping};
use eqsql_core::counterexample::separating_database_via;
use eqsql_core::{
    cnb_via, sigma_minimality_witness_via, CnbOptions, MinimalityWitness, SoundChaser,
};
use eqsql_cq::{canonical_representation, containment_mapping, find_isomorphism, CqQuery, Subst};
use eqsql_deps::implication::{conclusion_holds, premise_query};
use eqsql_deps::{Dependency, DependencySet};
use eqsql_obs::{Histogram, HistogramSummary, Phase, StepProbe, TraceCtx, TraceSink, PHASES};
use eqsql_relalg::{canonical_database, Database, Schema, Semantics};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Per-request overrides: semantics, chase budgets, and a wall-clock
/// deadline. `None` fields fall back to the Solver's defaults, so
/// `RequestOpts::default()` means "as configured at build time".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestOpts {
    /// Semantics override for this request.
    pub sem: Option<Semantics>,
    /// Chase step-budget override.
    pub max_steps: Option<usize>,
    /// Chase atom-budget override.
    pub max_atoms: Option<usize>,
    /// Wall-clock deadline in milliseconds, counted from the moment the
    /// decision starts (not from batch submission). Exceeding it aborts
    /// the decision with [`Error::DeadlineExceeded`] within one engine
    /// step; `0` means "already expired" (every decision fails
    /// immediately — useful for smoke-testing timeout paths). Unlike the
    /// step budget, a blown deadline is a transient outcome and is never
    /// cached.
    pub deadline_ms: Option<u64>,
    /// Deterministic fault-injection plan (test hook): forces a
    /// cancellation, deadline expiry, or panic at the Nth guard poll of
    /// this decision. See [`FaultPlan`].
    pub fault: Option<FaultPlan>,
}

impl RequestOpts {
    /// Overrides just the semantics.
    pub fn with_sem(sem: Semantics) -> RequestOpts {
        RequestOpts { sem: Some(sem), ..RequestOpts::default() }
    }

    /// Overrides just the deadline.
    pub fn with_deadline_ms(ms: u64) -> RequestOpts {
        RequestOpts { deadline_ms: Some(ms), ..RequestOpts::default() }
    }
}

/// What [`Solver::decide_all_with`] does with requests beyond the
/// admission queue's capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Requests arriving at a full queue are rejected ([`Error::Shed`]);
    /// the earliest-admitted requests run.
    RejectNew,
    /// The oldest *waiting* request is shed to admit the newcomer; the
    /// latest-arriving requests run.
    CancelOldest,
}

/// Bounded admission for [`Solver::decide_all_with`]: at most `capacity`
/// requests of a batch are admitted; the rest are shed per `policy` at
/// intake (in request order, before any work starts) and answered with
/// [`Error::Shed`]. Shedding is counted in [`SolverStats::shed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests admitted per batch.
    pub capacity: usize,
    /// What to do with the overflow.
    pub policy: ShedPolicy,
}

impl AdmissionConfig {
    /// Admission with the given capacity and the [`ShedPolicy::RejectNew`]
    /// policy.
    pub fn reject_new(capacity: usize) -> AdmissionConfig {
        AdmissionConfig { capacity, policy: ShedPolicy::RejectNew }
    }

    /// Admission with the given capacity and the
    /// [`ShedPolicy::CancelOldest`] policy.
    pub fn cancel_oldest(capacity: usize) -> AdmissionConfig {
        AdmissionConfig { capacity, policy: ShedPolicy::CancelOldest }
    }
}

/// Retry-with-escalated-budget for [`Solver::decide_all_with`]: a request
/// answered [`Error::BudgetExhausted`] — the one *stable* error a bigger
/// budget can cure — is re-decided with its step and atom budgets
/// multiplied by `budget_multiplier`, up to `max_attempts` total attempts.
/// The escalated run uses a distinct cache context (budgets are part of
/// the context key), so the memoized exhaustion at the smaller budget is
/// neither consulted nor clobbered. Retries are counted in
/// [`SolverStats::retries`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per request (1 = no retry).
    pub max_attempts: u32,
    /// Budget multiplier applied per retry (compounding).
    pub budget_multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 2, budget_multiplier: 4 }
    }
}

/// The ops envelope of a [`Solver::decide_all_with`] batch: cancellation,
/// a default deadline, bounded admission, and budget-escalating retry.
/// `BatchOptions::default()` is exactly [`Solver::decide_all`].
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Batch-level cancellation handle: cancelling it aborts every
    /// not-yet-finished request of the batch (each within one engine step)
    /// with [`Error::Cancelled`].
    pub cancel: Option<Cancel>,
    /// Default per-request deadline (ms, counted from each decision's
    /// start); a request's own [`RequestOpts::deadline_ms`] takes
    /// precedence.
    pub deadline_ms: Option<u64>,
    /// Bounded admission with a shed policy. `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Retry-with-escalated-budget. `None` means one attempt per request.
    pub retry: Option<RetryPolicy>,
    /// Per-request microseconds already spent queued *before* batch
    /// intake — `offsets[i]` belongs to `requests[i]`; missing entries
    /// count as zero. A network server sets this to the socket-read →
    /// batch-submission wait, so each request's Queue-phase span (and its
    /// wall clock, hence the latency histogram and event lines) starts at
    /// the socket read rather than at batch assembly. Phase sums stay ≤
    /// wall: the offset extends both ends of the accounting equally.
    pub queue_offsets_us: Option<Vec<u64>>,
}

/// One decision of the paper's family. Construct with the query/dependency
/// types of the substrate crates; per-request overrides ride in
/// [`RequestOpts`].
#[derive(Clone, Debug)]
pub enum Request {
    /// `q1 ≡_{Σ,sem} q2`? (Theorems 2.2 / 6.1 / 6.2.)
    Equivalent {
        /// Left query.
        q1: CqQuery,
        /// Right query.
        q2: CqQuery,
        /// Per-request overrides.
        opts: RequestOpts,
    },
    /// `q1 ⊑_{Σ,S} q2`? Set semantics only (bag containment is open —
    /// see [`Request::BagContained`]); requesting another semantics is an
    /// [`Error::UnsupportedSemantics`].
    Contained {
        /// The (candidate) contained query.
        q1: CqQuery,
        /// The containing query.
        q2: CqQuery,
        /// Per-request overrides.
        opts: RequestOpts,
    },
    /// `q1 ⊑_{Σ,B} q2`? The sound three-valued procedure built from the
    /// paper's necessary condition (Appendix D), the multiset-onto
    /// sufficient condition and a Σ-repaired falsifier; may answer
    /// [`Answer::BagContainmentOpen`].
    BagContained {
        /// The (candidate) contained query.
        q1: CqQuery,
        /// The containing query.
        q2: CqQuery,
        /// Per-request overrides.
        opts: RequestOpts,
    },
    /// Is `q` Σ-minimal (Definition 3.1) under the effective semantics?
    Minimal {
        /// The query to test.
        q: CqQuery,
        /// Per-request overrides.
        opts: RequestOpts,
    },
    /// All Σ-minimal reformulations of `q` — C&B / Bag-C&B / Bag-Set-C&B
    /// depending on the effective semantics (Theorems 6.4, K.1).
    Reformulate {
        /// The query to reformulate.
        q: CqQuery,
        /// Per-request overrides.
        opts: RequestOpts,
    },
    /// Does Σ logically imply `dep` (on all instances)? Decided by chasing
    /// the frozen premise; semantics overrides are ignored (implication is
    /// a set-semantics notion).
    Implies {
        /// The candidate implied dependency.
        dep: Dependency,
        /// Per-request overrides (budgets only).
        opts: RequestOpts,
    },
    /// Repair a database instance into a model of Σ with the labelled-null
    /// chase. An unrepairable instance (an egd equates two distinct
    /// constants) is an [`Error::EgdFailure`].
    ChaseInstance {
        /// The instance to repair.
        db: Database,
        /// Per-request overrides (budgets only).
        opts: RequestOpts,
    },
}

impl Request {
    fn opts(&self) -> &RequestOpts {
        match self {
            Request::Equivalent { opts, .. }
            | Request::Contained { opts, .. }
            | Request::BagContained { opts, .. }
            | Request::Minimal { opts, .. }
            | Request::Reformulate { opts, .. }
            | Request::Implies { opts, .. }
            | Request::ChaseInstance { opts, .. } => opts,
        }
    }

    /// Short label for logs and the `eqsql-serve` output.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Equivalent { .. } => "equivalent",
            Request::Contained { .. } => "contains",
            Request::BagContained { .. } => "bag-contains",
            Request::Minimal { .. } => "minimal",
            Request::Reformulate { .. } => "cnb",
            Request::Implies { .. } => "implies",
            Request::ChaseInstance { .. } => "chase-instance",
        }
    }
}

/// The typed answer of a decision, with its evidence.
#[derive(Clone, Debug)]
pub enum Answer {
    /// The queries are Σ-equivalent; the certificate replays the
    /// witnessing homomorphisms (or bijection) between the terminals.
    Equivalent {
        /// The equivalence certificate.
        certificate: EquivalenceCertificate,
    },
    /// The queries are not Σ-equivalent. Where the (sound, incomplete)
    /// search finds one, a separating database `D ⊨ Σ` rides along.
    NotEquivalent {
        /// A verified separating instance, when one was found.
        counterexample: Option<Counterexample>,
    },
    /// `q1 ⊑_{Σ,S} q2`, certified by a containment mapping.
    Contained {
        /// The containment certificate.
        certificate: ContainmentCertificate,
    },
    /// `q1 ⋢_{Σ,S} q2`; the canonical database of `(q1)_{Σ,S}` witnesses
    /// the gap when it verifies.
    NotContained {
        /// A verified witness of the containment gap, when one was found.
        counterexample: Option<Counterexample>,
    },
    /// `q1 ⊑_{Σ,B} q2`, certified by a multiset-onto containment mapping
    /// (or trivially by an unsatisfiable left side).
    BagContained {
        /// The bag-containment certificate.
        certificate: BagContainmentCertificate,
    },
    /// `q1 ⋢_{Σ,B} q2`, witnessed by a Σ-satisfying database with a
    /// multiplicity gap.
    BagNotContained {
        /// The verified multiplicity-gap witness.
        counterexample: Counterexample,
    },
    /// Neither direction of the bag-containment question could be
    /// established — the general problem is open, and this procedure is
    /// deliberately three-valued rather than falsely confident.
    BagContainmentOpen,
    /// The query is Σ-minimal (no witness of Definition 3.1 exists).
    Minimal,
    /// The query is not Σ-minimal: the witness carries the identified
    /// query `S1` and the reduced `S2 ≡_{Σ,sem} q`.
    NotMinimal {
        /// The Definition 3.1 witness.
        witness: MinimalityWitness,
    },
    /// The C&B result: universal plan and all Σ-minimal reformulations.
    Reformulated {
        /// The universal plan `(Q)_{Σ,sem}`.
        universal_plan: CqQuery,
        /// All Σ-minimal reformulations (pairwise non-isomorphic).
        reformulations: Vec<CqQuery>,
        /// Candidate subqueries the backchase tested.
        candidates_tested: usize,
    },
    /// Σ implies the dependency.
    Implied {
        /// The chased premise query the conclusion was found in
        /// (meaningless when `vacuous`).
        chased_premise: CqQuery,
        /// The egd renaming the chase accumulated (evidence input for
        /// replaying the conclusion check).
        renaming: Subst,
        /// The premise was unsatisfiable under Σ: implication holds
        /// vacuously.
        vacuous: bool,
    },
    /// Σ does not imply the dependency: the chased premise is a
    /// counterexample template (its canonical database satisfies Σ but
    /// not the dependency).
    NotImplied {
        /// The chased premise query.
        chased_premise: CqQuery,
        /// The egd renaming the chase accumulated.
        renaming: Subst,
        /// The materialized canonical-database witness (`db ⊨ Σ`,
        /// `db ⊭ dep`), when counterexample search is enabled and the
        /// witness replays. See [`ImplicationCounterexample`].
        counterexample: Option<ImplicationCounterexample>,
    },
    /// The repaired instance (a model of Σ).
    ChasedInstance {
        /// The repaired database.
        db: Database,
        /// Chase steps the repair took.
        steps: usize,
    },
}

impl Answer {
    /// Short label for logs and mismatch diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            Answer::Equivalent { .. } => "equivalent",
            Answer::NotEquivalent { .. } => "not-equivalent",
            Answer::Contained { .. } => "contained",
            Answer::NotContained { .. } => "not-contained",
            Answer::BagContained { .. } => "bag-contained",
            Answer::BagNotContained { .. } => "bag-not-contained",
            Answer::BagContainmentOpen => "bag-containment-open",
            Answer::Minimal => "minimal",
            Answer::NotMinimal { .. } => "not-minimal",
            Answer::Reformulated { .. } => "reformulated",
            Answer::Implied { .. } => "implied",
            Answer::NotImplied { .. } => "not-implied",
            Answer::ChasedInstance { .. } => "chased-instance",
        }
    }
}

/// Per-decision resource accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionStats {
    /// Chase steps executed (or replayed from cache) for this decision.
    pub chase_steps: u64,
    /// Chase-cache hits attributable to this decision.
    pub cache_hits: u64,
    /// Chase-cache misses attributable to this decision.
    pub cache_misses: u64,
    /// Wall-clock time.
    pub wall: Duration,
}

/// A decision with its evidence and accounting.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The typed answer.
    pub answer: Answer,
    /// Resource accounting for this decision.
    pub stats: DecisionStats,
}

impl Verdict {
    /// `true` for the positive answers (`Equivalent`, `Contained`,
    /// `BagContained`, `Minimal`, `Implied`).
    pub fn is_positive(&self) -> bool {
        matches!(
            self.answer,
            Answer::Equivalent { .. }
                | Answer::Contained { .. }
                | Answer::BagContained { .. }
                | Answer::Minimal
                | Answer::Implied { .. }
        )
    }

    /// Replays every piece of evidence this verdict carries against the
    /// request it answered. Every `(answer, request)` shape is matched
    /// explicitly: a verdict paired with the wrong request kind is an
    /// error, never a silent pass. Answers whose content is the *absence*
    /// of a witness (e.g. [`Answer::Minimal`]) or whose replay would
    /// require re-running a chase (the `Reformulated`/`Implied`/
    /// `ChasedInstance` terminals — the randomized differential suite
    /// covers those against the legacy oracles) verify structurally only;
    /// `NotImplied` replays its canonical-database counterexample when one
    /// was attached.
    pub fn verify(
        &self,
        request: &Request,
        sigma: &DependencySet,
        schema: &Schema,
    ) -> Result<(), crate::evidence::CertificateError> {
        let mismatch = || {
            Err(crate::evidence::CertificateError {
                reason: format!(
                    "answer `{}` does not belong to a `{}` request",
                    self.answer.label(),
                    request.label()
                ),
            })
        };
        match (&self.answer, request) {
            (Answer::Equivalent { certificate }, Request::Equivalent { .. }) => {
                certificate.verify()
            }
            (Answer::NotEquivalent { counterexample }, Request::Equivalent { q1, q2, .. }) => {
                match counterexample {
                    Some(cex) => cex.verify(q1, q2, sigma, schema),
                    None => Ok(()),
                }
            }
            (Answer::Contained { certificate }, Request::Contained { q2, .. }) => {
                certificate.verify(q2)
            }
            (Answer::NotContained { counterexample }, Request::Contained { q1, q2, .. }) => {
                match counterexample {
                    Some(cex) => cex.verify_set_gap(q1, q2, sigma),
                    None => Ok(()),
                }
            }
            (Answer::BagContained { certificate }, Request::BagContained { .. }) => {
                certificate.verify()
            }
            (Answer::BagNotContained { counterexample }, Request::BagContained { q1, q2, .. }) => {
                counterexample.verify_bag_gap(q1, q2, sigma, schema)
            }
            (Answer::BagContainmentOpen, Request::BagContained { .. }) => Ok(()),
            (Answer::Minimal, Request::Minimal { .. }) => Ok(()),
            (Answer::NotMinimal { witness }, Request::Minimal { q, .. }) => {
                // Structural replay of the Definition 3.1 shape: S1 is q
                // with variables identified (same body length, same head
                // width) and S2 drops at least one atom of S1, keeping a
                // sub-multiset of its body. The Σ-equivalence S2 ≡ q
                // itself needs a chase, so it is pinned by the randomized
                // differential suite rather than replayed here.
                if witness.identified.body.len() != q.body.len()
                    || witness.identified.head.len() != q.head.len()
                {
                    return Err(crate::evidence::CertificateError {
                        reason: "minimality witness S1 is not an identification of q".into(),
                    });
                }
                let mut remaining: Vec<&eqsql_cq::Atom> = witness.identified.body.iter().collect();
                let covered = witness.reduced.body.iter().all(|a| {
                    remaining
                        .iter()
                        .position(|b| *b == a)
                        .map(|i| remaining.swap_remove(i))
                        .is_some()
                });
                if !covered || witness.reduced.body.len() >= witness.identified.body.len() {
                    return Err(crate::evidence::CertificateError {
                        reason: "minimality witness S2 does not drop atoms of S1".into(),
                    });
                }
                Ok(())
            }
            (Answer::NotImplied { counterexample, .. }, Request::Implies { dep, .. }) => {
                match counterexample {
                    Some(cex) => cex.verify(dep, sigma),
                    None => Ok(()),
                }
            }
            (Answer::Reformulated { .. }, Request::Reformulate { .. })
            | (Answer::Implied { .. }, Request::Implies { .. })
            | (Answer::ChasedInstance { .. }, Request::ChaseInstance { .. }) => Ok(()),
            _ => mismatch(),
        }
    }
}

/// One request's completion, handed to the [`Solver::decide_all_streaming`]
/// callback the moment the request decides — shed at intake, decided by a
/// worker, or isolated after a panic — rather than at batch end. The same
/// verdict also lands in the returned [`BatchReport`] at `index`.
pub struct Completion<'a> {
    /// The request's index in the batch's `requests` slice.
    pub index: usize,
    /// The verdict (borrowed; cloned into the [`BatchReport`]).
    pub verdict: &'a Result<Verdict, Error>,
    /// Per-decision accounting.
    pub stats: DecisionStats,
    /// Wall µs from batch intake, extended by the request's
    /// [`BatchOptions::queue_offsets_us`] head start.
    pub wall_us: u64,
    /// Per-phase µs in [`PHASES`] order, when the solver is observing
    /// (`None` on the timestamp-free fast path).
    pub phase_us: Option<[u64; 5]>,
}

/// A batch of decisions: verdicts in request order plus aggregate
/// accounting.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// `verdicts[i]` answers `requests[i]`.
    pub verdicts: Vec<Result<Verdict, Error>>,
    /// Aggregate accounting across the batch (hits/misses/steps are summed
    /// over all requests, including ones that ended in an error).
    pub stats: DecisionStats,
    /// Worker threads used.
    pub threads: usize,
    /// Requests shed at admission (their verdicts are [`Error::Shed`]).
    pub shed: usize,
}

/// Cumulative per-phase wall time across every observed batch request,
/// in microseconds. All zero until observability is on (the global
/// [`eqsql_obs::enabled`] gate or a configured
/// [`SolverBuilder::trace_sink`]) — the disabled solver takes no
/// per-phase timestamps at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Admission-queue wait (batch intake → worker pickup).
    pub queue_us: u64,
    /// Σ-regularization / override-context construction.
    pub regularize_us: u64,
    /// Chase calls answered by running the engine (cache misses).
    pub chase_us: u64,
    /// Chase calls answered from the cache (memory or disk tier).
    pub cache_us: u64,
    /// Evidence construction, excluding the nested chases it issues.
    pub evidence_us: u64,
}

/// Point-in-time Solver counters: the cache snapshot plus request/batch
/// totals, as one struct so monitoring reads are coherent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Requests decided (success or error) since construction.
    pub requests: u64,
    /// `decide_all` batches run since construction.
    pub batches: u64,
    /// Requests shed at admission ([`AdmissionConfig`]) since construction.
    pub shed: u64,
    /// Budget-escalating retries ([`RetryPolicy`]) since construction.
    pub retries: u64,
    /// Requests that panicked and were isolated to an [`Error::Internal`]
    /// verdict since construction.
    pub panics: u64,
    /// Per-request batch latency summary (µs), populated only while
    /// observability is on — see [`PhaseTotals`].
    pub latency: HistogramSummary,
    /// Cumulative per-phase timings across observed batch requests.
    pub phase: PhaseTotals,
    /// The shared chase cache's counters.
    pub cache: crate::cache::CacheStats,
}

/// Builder for [`Solver`]: captures everything the decision family used to
/// take piecemeal. All knobs default sensibly — `Solver::builder(σ, schema)
/// .build()` is a working solver.
pub struct SolverBuilder {
    sigma: DependencySet,
    schema: Schema,
    sem: Semantics,
    config: ChaseConfig,
    engine: EngineOpts,
    cnb_opts: CnbOptions,
    cache: Option<Arc<ChaseCache>>,
    cache_config: CacheConfig,
    threads: usize,
    counterexamples: bool,
    trace_sink: Option<Arc<dyn TraceSink>>,
}

impl SolverBuilder {
    /// Starts a builder over Σ and a schema. Defaults: set semantics,
    /// default chase budgets, reference engine (no delta seeding, one
    /// probe), a fresh default-sized cache, one worker thread,
    /// counterexample search enabled.
    pub fn new(sigma: DependencySet, schema: Schema) -> SolverBuilder {
        SolverBuilder {
            sigma,
            schema,
            sem: Semantics::Set,
            config: ChaseConfig::default(),
            engine: EngineOpts::default(),
            cnb_opts: CnbOptions::default(),
            cache: None,
            cache_config: CacheConfig::default(),
            threads: 1,
            counterexamples: true,
            trace_sink: None,
        }
    }

    /// The semantics used when a request does not override it.
    pub fn default_semantics(mut self, sem: Semantics) -> SolverBuilder {
        self.sem = sem;
        self
    }

    /// Default chase budgets.
    pub fn chase_config(mut self, config: ChaseConfig) -> SolverBuilder {
        self.config = config;
        self
    }

    /// Engine knobs: delta-seeded premise search, parallel probes.
    pub fn engine_opts(mut self, engine: EngineOpts) -> SolverBuilder {
        self.engine = engine;
        self
    }

    /// Backchase options for [`Request::Reformulate`].
    pub fn cnb_options(mut self, opts: CnbOptions) -> SolverBuilder {
        self.cnb_opts = opts;
        self
    }

    /// Adopts an existing (possibly warm, possibly shared) chase cache.
    pub fn cache(mut self, cache: Arc<ChaseCache>) -> SolverBuilder {
        self.cache = Some(cache);
        self
    }

    /// Sizing for the fresh cache built when none is adopted.
    pub fn cache_config(mut self, config: CacheConfig) -> SolverBuilder {
        self.cache_config = config;
        self
    }

    /// Convenience: persist the fresh cache at `dir` with the default
    /// snapshot cadence (see [`crate::cache::persist::PersistConfig`]).
    /// A solver restarted over the same directory answers previously
    /// decided `(Q, Σ)` chases from disk; recovery/discard counters
    /// surface in [`Solver::stats`]. Ignored when a cache is adopted via
    /// [`SolverBuilder::cache`]. If the tier cannot be opened the solver
    /// still builds, degraded to memory-only with `persist.io_errors = 1`.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> SolverBuilder {
        self.cache_config.persist = Some(crate::cache::persist::PersistConfig::at(dir));
        self
    }

    /// Worker threads for [`Solver::decide_all`] (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> SolverBuilder {
        self.threads = threads.max(1);
        self
    }

    /// Whether negative verdicts search for a separating database.
    /// Disable for throughput-sensitive batches that only need the
    /// boolean.
    pub fn counterexamples(mut self, on: bool) -> SolverBuilder {
        self.counterexamples = on;
        self
    }

    /// Installs a per-request trace sink: every batch request (including
    /// shed and dead ones) emits one structured `key=value` event line
    /// (see [`TraceCtx::render`]). Configuring a sink turns observation
    /// on for this solver regardless of the global [`eqsql_obs::enabled`]
    /// flag — the sink is an explicit opt-in.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> SolverBuilder {
        self.trace_sink = Some(sink);
        self
    }

    /// Builds the solver: Σ is regularized once, context keys are
    /// precomputed per semantics, the cache is created if not adopted.
    pub fn build(self) -> Solver {
        let cache = self.cache.unwrap_or_else(|| Arc::new(ChaseCache::new(self.cache_config)));
        let (sigma_reg, reg_text) = cache.regularized_with_text(&self.sigma);
        let ctx = [Semantics::Set, Semantics::Bag, Semantics::BagSet].map(|sem| {
            ChaseContext::with_text(
                sem,
                Arc::clone(&reg_text),
                &self.schema,
                &self.config,
                self.engine.delta_seeding,
            )
        });
        Solver {
            sigma: self.sigma,
            schema: self.schema,
            sem: self.sem,
            config: self.config,
            engine: self.engine,
            cnb_opts: self.cnb_opts,
            cache,
            threads: self.threads,
            counterexamples: self.counterexamples,
            sigma_reg,
            reg_text,
            ctx,
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            trace_sink: self.trace_sink,
            latency: Histogram::new(),
            phase_totals: Default::default(),
        }
    }
}

/// The façade: every decision procedure of the paper behind
/// [`Solver::decide`]. See the module docs for an example.
pub struct Solver {
    sigma: DependencySet,
    schema: Schema,
    sem: Semantics,
    config: ChaseConfig,
    engine: EngineOpts,
    cnb_opts: CnbOptions,
    cache: Arc<ChaseCache>,
    threads: usize,
    counterexamples: bool,
    /// Σ regularized once at construction (shared with the cache's memo).
    sigma_reg: Arc<DependencySet>,
    /// The regularized Σ rendered once, for on-demand context keys when a
    /// request overrides the budgets.
    reg_text: Arc<str>,
    /// Context keys at the default budgets, indexed Set/Bag/BagSet.
    ctx: [ChaseContext; 3],
    requests: AtomicU64,
    batches: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    panics: AtomicU64,
    /// Event sink for per-request traces ([`SolverBuilder::trace_sink`]).
    trace_sink: Option<Arc<dyn TraceSink>>,
    /// Per-request batch latency (µs), recorded only while observing.
    latency: Histogram,
    /// Cumulative per-phase µs, indexed in [`PHASES`] order.
    phase_totals: [AtomicU64; 5],
}

/// The per-attempt execution environment threaded from the batch layer
/// into one decision: the batch cancellation handle, the batch-default
/// deadline, and the retry loop's budget scale.
struct RunEnv<'a> {
    cancel: Option<&'a Cancel>,
    deadline_ms: Option<u64>,
    budget_scale: u32,
    /// This request's trace span, when the solver is observing. `None`
    /// keeps the whole decision on the timestamp-free fast path.
    trace: Option<&'a TraceCtx>,
}

impl Default for RunEnv<'_> {
    fn default() -> Self {
        RunEnv { cancel: None, deadline_ms: None, budget_scale: 1, trace: None }
    }
}

/// One batch request's observation bundle: its span, its event id (the
/// request's index in the batch) and the instant wall time counts from
/// (batch intake, so the queue wait is inside the wall).
struct TraceObs<'a> {
    ctx: &'a TraceCtx,
    req: u64,
    origin: Instant,
}

/// Best-effort extraction of a panic payload's message (the `&str` and
/// `String` payloads `panic!` produces cover practically everything).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

fn sem_index(sem: Semantics) -> usize {
    match sem {
        Semantics::Set => 0,
        Semantics::Bag => 1,
        Semantics::BagSet => 2,
    }
}

/// The Solver's [`SoundChaser`]: routes every chase through the shared
/// cache (precomputed context keys on the default-budget path, on-demand
/// keys for overrides) and counts hits/misses/steps for per-decision
/// attribution. The `sigma` parameter of the trait is ignored — the
/// Solver always chases against its own (pre-regularized) Σ.
struct SolverChaser<'a> {
    solver: &'a Solver,
    config: ChaseConfig,
    /// The solver's engine knobs with this decision's [`RunGuard`]
    /// threaded in — what every chase of the decision actually runs under.
    engine: EngineOpts,
    /// Context keys for an overridden budget, built at most once per
    /// semantics per decision (the budget is fixed for the whole
    /// decision): a C&B backchase or minimality sweep with overrides
    /// issues hundreds of chases, and each context build re-hashes the
    /// rendered Σ.
    override_ctx: [OnceLock<ChaseContext>; 3],
    hits: AtomicU64,
    misses: AtomicU64,
    steps: AtomicU64,
    /// The decision's trace span, when observing. `None` skips every
    /// timestamp on the chase path.
    trace: Option<&'a TraceCtx>,
}

impl SoundChaser for SolverChaser<'_> {
    fn sound_chase(
        &self,
        sem: Semantics,
        q: &CqQuery,
        _sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError> {
        // A dead run must not keep streaming cache hits: check the guard
        // before touching the cache, so even an all-hit decision aborts at
        // its next chase boundary.
        self.engine.guard.check(self.steps.load(Ordering::Relaxed) as usize)?;
        let s = self.solver;
        let default_budget =
            config.max_steps == s.config.max_steps && config.max_atoms == s.config.max_atoms;
        let ctx = if default_budget {
            &s.ctx[sem_index(sem)]
        } else {
            let build = || {
                ChaseContext::with_text(
                    sem,
                    Arc::clone(&s.reg_text),
                    schema,
                    config,
                    s.engine.delta_seeding,
                )
            };
            self.override_ctx[sem_index(sem)].get_or_init(|| match self.trace {
                Some(t) => t.time(Phase::Regularize, build),
                None => build(),
            })
        };
        let chase = || {
            s.cache.chase_keyed_attributed(ctx, &s.sigma_reg, sem, q, schema, config, &self.engine)
        };
        let (result, outcome) = match self.trace {
            None => chase(),
            Some(t) => {
                // A call answered from the cache is Cache-phase time; a
                // miss is dominated by the engine and is Chase-phase time
                // (the failed probe and the store ride along — they are
                // noise next to a chase).
                let started = Instant::now();
                let (result, outcome) = chase();
                let us = started.elapsed().as_micros() as u64;
                t.add_us(if outcome.is_hit() { Phase::Cache } else { Phase::Chase }, us);
                match outcome {
                    crate::cache::CacheOutcome::MemoryHit => t.mem_hit(),
                    crate::cache::CacheOutcome::DiskHit => t.disk_hit(),
                    crate::cache::CacheOutcome::Miss => t.miss(),
                }
                (result, outcome)
            }
        };
        if outcome.is_hit() { &self.hits } else { &self.misses }.fetch_add(1, Ordering::Relaxed);
        if let Ok(r) = &result {
            self.steps.fetch_add(r.steps as u64, Ordering::Relaxed);
        }
        result
    }

    fn run_guard(&self) -> RunGuard {
        self.engine.guard.clone()
    }
}

impl Solver {
    /// Starts a [`SolverBuilder`] over Σ and a schema.
    pub fn builder(sigma: DependencySet, schema: Schema) -> SolverBuilder {
        SolverBuilder::new(sigma, schema)
    }

    /// The solver's Σ.
    pub fn sigma(&self) -> &DependencySet {
        &self.sigma
    }

    /// The solver's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The default chase budgets.
    pub fn chase_config(&self) -> &ChaseConfig {
        &self.config
    }

    /// The shared chase-cache handle (e.g. to hand to another Solver or a
    /// [`crate::BatchSession`]).
    pub fn cache(&self) -> &Arc<ChaseCache> {
        &self.cache
    }

    /// Swaps the cache handle (context keys are cache-independent, so this
    /// is free). Used by [`crate::BatchSession::with_cache`].
    pub(crate) fn set_cache(&mut self, cache: Arc<ChaseCache>) {
        self.cache = cache;
    }

    /// Adjusts the worker-thread count after construction.
    pub(crate) fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// One coherent counter snapshot: cache hit/miss/eviction plus the
    /// solver's request/batch totals.
    pub fn stats(&self) -> SolverStats {
        let pt: Vec<u64> = self.phase_totals.iter().map(|p| p.load(Ordering::Relaxed)).collect();
        SolverStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            latency: self.latency.summary(),
            phase: PhaseTotals {
                queue_us: pt[0],
                regularize_us: pt[1],
                chase_us: pt[2],
                cache_us: pt[3],
                evidence_us: pt[4],
            },
            cache: self.cache.stats(),
        }
    }

    /// Is this solver observing batch requests? True when the global
    /// [`eqsql_obs::enabled`] gate is on *or* a [`SolverBuilder::trace_sink`]
    /// was configured. When false, batch decisions take no timestamps
    /// beyond the pre-existing wall clock and arm no engine probe.
    fn observing(&self) -> bool {
        self.trace_sink.is_some() || eqsql_obs::enabled()
    }

    /// Records a finished (or dead) observed request: latency histogram,
    /// per-phase totals, and the event line if a sink is configured.
    fn finish_traced(
        &self,
        request: &Request,
        out: &(Result<Verdict, Error>, DecisionStats),
        obs: &TraceObs<'_>,
    ) {
        let wall_us = obs.origin.elapsed().as_micros() as u64;
        self.latency.record(wall_us);
        for (k, p) in PHASES.iter().enumerate() {
            self.phase_totals[k].fetch_add(obs.ctx.phase_us(*p), Ordering::Relaxed);
        }
        if let Some(sink) = &self.trace_sink {
            let (outcome, terminal) = match &out.0 {
                Ok(v) => (v.answer.label(), "ok"),
                Err(e) => e.labels(),
            };
            sink.emit(&obs.ctx.render(obs.req, request.label(), outcome, terminal, wall_us));
        }
    }

    fn effective_config(&self, opts: &RequestOpts) -> ChaseConfig {
        ChaseConfig {
            max_steps: opts.max_steps.unwrap_or(self.config.max_steps),
            max_atoms: opts.max_atoms.unwrap_or(self.config.max_atoms),
        }
    }

    fn effective_sem(&self, opts: &RequestOpts) -> Semantics {
        opts.sem.unwrap_or(self.sem)
    }

    /// Decides one request. See [`Request`] for the family and [`Answer`]
    /// for the evidence each verdict carries. The request's own
    /// [`RequestOpts::deadline_ms`] applies; for batch-level cancellation,
    /// admission and retry, use [`Solver::decide_all_with`].
    pub fn decide(&self, request: &Request) -> Result<Verdict, Error> {
        self.decide_counted(request, &RunEnv::default()).0
    }

    /// [`Solver::decide_all_with`] under default [`BatchOptions`]: no
    /// cancellation handle, no batch deadline, admit everything, one
    /// attempt per request.
    pub fn decide_all(&self, requests: &[Request]) -> BatchReport {
        self.decide_all_with(requests, &BatchOptions::default())
    }

    /// Decides every request, pulling work from a shared counter across
    /// the configured worker threads, under the ops envelope of
    /// [`BatchOptions`]. Verdicts come back in request order; each depends
    /// only on its own request (the cache changes *which* computation
    /// produced a terminal, never the terminal itself), so the output is
    /// independent of scheduling.
    ///
    /// Robustness semantics:
    ///
    /// * **admission** — at most [`AdmissionConfig::capacity`] requests
    ///   are admitted, decided at intake in request order; the overflow
    ///   is shed per policy with [`Error::Shed`] verdicts, before any
    ///   work starts;
    /// * **panic isolation** — a request that panics yields
    ///   [`Error::Internal`] and the batch keeps going;
    /// * **retry** — [`Error::BudgetExhausted`] verdicts are re-decided
    ///   under [`RetryPolicy`]-escalated budgets;
    /// * **cancellation / deadline** — [`BatchOptions::cancel`] and
    ///   [`BatchOptions::deadline_ms`] guard every admitted request.
    pub fn decide_all_with(&self, requests: &[Request], opts: &BatchOptions) -> BatchReport {
        self.decide_all_streaming(requests, opts, &|_| {})
    }

    /// [`Solver::decide_all_with`] plus a per-request completion hook:
    /// `on_complete` fires from whichever worker thread finished the
    /// request (or synchronously at intake for shed requests), as soon as
    /// its verdict exists — not at batch end. A network server uses this
    /// to stream response lines back while the rest of the batch is still
    /// deciding. The callback must be `Sync` (workers call it
    /// concurrently) and should be quick: it runs on the worker's time.
    pub fn decide_all_streaming(
        &self,
        requests: &[Request],
        opts: &BatchOptions,
        on_complete: &(dyn Fn(Completion<'_>) + Sync),
    ) -> BatchReport {
        let start = Instant::now();
        self.batches.fetch_add(1, Ordering::Relaxed);
        let observing = self.observing();
        let n = requests.len();
        let slots: Vec<OnceLock<(Result<Verdict, Error>, DecisionStats)>> =
            (0..n).map(|_| OnceLock::new()).collect();
        // Request i's clock starts `queue_offsets_us[i]` *before* batch
        // intake (the socket-read instant, for a network server), so its
        // Queue span and wall clock cover the pre-batch wait too.
        let origin = |i: usize| {
            let off = opts.queue_offsets_us.as_ref().and_then(|v| v.get(i)).copied().unwrap_or(0);
            start.checked_sub(Duration::from_micros(off)).unwrap_or(start)
        };
        // Admission: a bounded queue filled in request order. RejectNew
        // sheds each arrival past capacity; CancelOldest sheds the oldest
        // *waiting* request to admit the newcomer. Intake is synchronous
        // and deterministic — shedding depends only on the request order
        // and the policy, never on worker scheduling.
        let mut admitted: Vec<usize> = Vec::with_capacity(n);
        let mut shed = 0usize;
        match opts.admission {
            None => admitted.extend(0..n),
            Some(adm) => {
                for i in 0..n {
                    if admitted.len() < adm.capacity {
                        admitted.push(i);
                        continue;
                    }
                    let victim = match adm.policy {
                        ShedPolicy::RejectNew => i,
                        ShedPolicy::CancelOldest => {
                            let oldest = admitted.remove(0);
                            admitted.push(i);
                            oldest
                        }
                    };
                    shed += 1;
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    let rejection =
                        (Err(Error::Shed { capacity: adm.capacity }), DecisionStats::default());
                    let o = origin(victim);
                    let mut phase_us = None;
                    if observing {
                        // A shed request still gets a complete event: its
                        // whole life was queue wait.
                        let ctx = TraceCtx::new();
                        ctx.add_us(Phase::Queue, o.elapsed().as_micros() as u64);
                        let obs = TraceObs { ctx: &ctx, req: victim as u64, origin: o };
                        self.finish_traced(&requests[victim], &rejection, &obs);
                        phase_us = Some(PHASES.map(|p| ctx.phase_us(p)));
                    }
                    on_complete(Completion {
                        index: victim,
                        verdict: &rejection.0,
                        stats: rejection.1,
                        wall_us: o.elapsed().as_micros() as u64,
                        phase_us,
                    });
                    let _ = slots[victim].set(rejection);
                }
            }
        }
        let workers = self.threads.min(admitted.len()).max(1);
        let next = AtomicUsize::new(0);
        let run = |i: usize| {
            let o = origin(i);
            let (decided, phase_us) = if observing {
                let ctx = TraceCtx::new();
                // Queue wait: request arrival until this worker picked it
                // up (intake plus any pre-batch head start).
                ctx.add_us(Phase::Queue, o.elapsed().as_micros() as u64);
                let obs = TraceObs { ctx: &ctx, req: i as u64, origin: o };
                let decided = self.decide_resilient(&requests[i], opts, Some(&obs));
                let phase_us = Some(PHASES.map(|p| ctx.phase_us(p)));
                (decided, phase_us)
            } else {
                (self.decide_resilient(&requests[i], opts, None), None)
            };
            on_complete(Completion {
                index: i,
                verdict: &decided.0,
                stats: decided.1,
                wall_us: o.elapsed().as_micros() as u64,
                phase_us,
            });
            decided
        };
        if workers == 1 {
            for &i in &admitted {
                let _ = slots[i].set(run(i));
            }
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = admitted.get(k) else { break };
                        let _ = slots[i].set(run(i));
                    });
                }
            });
        }
        let mut stats = DecisionStats::default();
        let mut verdicts = Vec::with_capacity(n);
        for slot in slots {
            // Every slot is set above (shed at intake, decided by a
            // worker, or an isolated panic verdict); an empty one would be
            // a scheduling defect, reported as such rather than panicking
            // the batch.
            let (verdict, d) = slot.into_inner().unwrap_or_else(|| {
                (Err(Error::internal("request slot was never decided")), DecisionStats::default())
            });
            stats.chase_steps += d.chase_steps;
            stats.cache_hits += d.cache_hits;
            stats.cache_misses += d.cache_misses;
            verdicts.push(verdict);
        }
        stats.wall = start.elapsed();
        BatchReport { verdicts, stats, threads: workers, shed }
    }

    /// One worker-loop iteration: panic isolation around the decision,
    /// plus the retry-with-escalated-budget loop.
    fn decide_resilient(
        &self,
        request: &Request,
        opts: &BatchOptions,
        obs: Option<&TraceObs<'_>>,
    ) -> (Result<Verdict, Error>, DecisionStats) {
        let retry = opts.retry.unwrap_or(RetryPolicy { max_attempts: 1, budget_multiplier: 1 });
        let mut scale: u32 = 1;
        let mut attempt: u32 = 1;
        loop {
            if let Some(o) = obs {
                o.ctx.attempt();
            }
            let env = RunEnv {
                cancel: opts.cancel.as_ref(),
                deadline_ms: opts.deadline_ms,
                budget_scale: scale,
                trace: obs.map(|o| o.ctx),
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.decide_counted(request, &env)
            }));
            match outcome {
                Err(payload) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    let message = panic_message(payload.as_ref());
                    let dead = (Err(Error::Internal { message }), DecisionStats::default());
                    if let Some(o) = obs {
                        self.finish_traced(request, &dead, o);
                    }
                    return dead;
                }
                Ok((Err(Error::BudgetExhausted { .. }), _))
                    if attempt < retry.max_attempts.max(1) =>
                {
                    attempt += 1;
                    scale = scale.saturating_mul(retry.budget_multiplier.max(1));
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                Ok(decided) => {
                    if let Some(o) = obs {
                        self.finish_traced(request, &decided, o);
                    }
                    return decided;
                }
            }
        }
    }

    /// [`Solver::decide`] plus the decision's accounting even when the
    /// decision errored (errors still spend chases).
    fn decide_counted(
        &self,
        request: &Request,
        env: &RunEnv<'_>,
    ) -> (Result<Verdict, Error>, DecisionStats) {
        let start = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let opts = request.opts();
        let mut config = self.effective_config(opts);
        if env.budget_scale > 1 {
            config.max_steps = config.max_steps.saturating_mul(env.budget_scale as usize);
            config.max_atoms = config.max_atoms.saturating_mul(env.budget_scale as usize);
        }
        // The guard: the request's own deadline wins over the batch
        // default; the batch cancellation handle and the request's fault
        // plan ride along. All `None` collapses to the unguarded guard —
        // zero per-step cost, step-identical to the pre-guard engine.
        let guard =
            RunGuard::new(opts.deadline_ms.or(env.deadline_ms), env.cancel.cloned(), opts.fault);
        let mut engine = self.engine.clone().guarded(guard.clone());
        // Arm a work probe only when tracing: the disarmed default is one
        // `Option` test per engine callback and the armed probe is pure
        // accounting, so the step sequence is identical either way.
        let probe = env.trace.map(|_| {
            let p = StepProbe::armed();
            engine.probe = p.clone();
            p
        });
        let chaser = SolverChaser {
            solver: self,
            config,
            engine,
            override_ctx: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            trace: env.trace,
        };
        let answer = self.answer(request, &chaser).and_then(|answer| {
            // A verdict that completed after the caller's interest lapsed
            // (deadline passed or cancellation arrived during the final,
            // non-chasing phase of the decision) is discarded: the caller
            // asked for an answer *by* the deadline, and a transient
            // error is the honest outcome.
            guard.check(chaser.steps.load(Ordering::Relaxed) as usize)?;
            Ok(answer)
        });
        let stats = DecisionStats {
            chase_steps: chaser.steps.load(Ordering::Relaxed),
            cache_hits: chaser.hits.load(Ordering::Relaxed),
            cache_misses: chaser.misses.load(Ordering::Relaxed),
            wall: start.elapsed(),
        };
        if let (Some(t), Some(p)) = (env.trace, &probe) {
            t.add_steps(stats.chase_steps);
            t.add_engine_work(p.steps(), p.scans());
        }
        (answer.map(|answer| Verdict { answer, stats }), stats)
    }

    fn answer(&self, request: &Request, chaser: &SolverChaser<'_>) -> Result<Answer, Error> {
        let config = chaser.config;
        match request {
            Request::Equivalent { q1, q2, opts } => {
                self.equivalence(chaser, self.effective_sem(opts), q1, q2, &config)
            }
            Request::Contained { q1, q2, opts } => {
                // The request variant fixes the semantics; only an
                // *explicit* conflicting override errors — the solver's
                // default semantics never leaks in.
                if let Some(sem) = opts.sem.filter(|&s| s != Semantics::Set) {
                    return Err(Error::UnsupportedSemantics { operation: "set-containment", sem });
                }
                self.containment(chaser, q1, q2, &config)
            }
            Request::BagContained { q1, q2, opts } => {
                if let Some(sem) = opts.sem.filter(|&s| s != Semantics::Bag) {
                    return Err(Error::UnsupportedSemantics { operation: "bag-containment", sem });
                }
                self.bag_containment(chaser, q1, q2, &config)
            }
            Request::Minimal { q, opts } => {
                let sem = self.effective_sem(opts);
                let witness = sigma_minimality_witness_via(
                    chaser,
                    q,
                    &self.sigma,
                    &self.schema,
                    sem,
                    &config,
                )?;
                Ok(match witness {
                    None => Answer::Minimal,
                    Some(witness) => Answer::NotMinimal { witness },
                })
            }
            Request::Reformulate { q, opts } => {
                let sem = self.effective_sem(opts);
                let r =
                    cnb_via(chaser, sem, q, &self.sigma, &self.schema, &config, &self.cnb_opts)?;
                Ok(Answer::Reformulated {
                    universal_plan: r.universal_plan,
                    reformulations: r.reformulations,
                    candidates_tested: r.candidates_tested,
                })
            }
            Request::Implies { dep, .. } => {
                let premise = premise_query(dep);
                let c = chaser.sound_chase(
                    Semantics::Set,
                    &premise,
                    &self.sigma,
                    &self.schema,
                    &config,
                )?;
                if c.failed {
                    return Ok(Answer::Implied {
                        chased_premise: c.query,
                        renaming: c.chased.renaming,
                        vacuous: true,
                    });
                }
                if conclusion_holds(dep, &c.query, &c.chased.renaming) {
                    Ok(Answer::Implied {
                        chased_premise: c.query,
                        renaming: c.chased.renaming,
                        vacuous: false,
                    })
                } else {
                    let counterexample =
                        self.implication_counterexample(chaser.trace, dep, &c.query);
                    Ok(Answer::NotImplied {
                        chased_premise: c.query,
                        renaming: c.chased.renaming,
                        counterexample,
                    })
                }
            }
            Request::ChaseInstance { db, .. } => {
                let r = chase_database_guarded(db, &self.sigma, &config, &chaser.engine.guard)?;
                if r.failed {
                    return Err(Error::EgdFailure { operation: "chase-instance" });
                }
                Ok(Answer::ChasedInstance { db: r.db, steps: r.steps })
            }
        }
    }

    /// Σ-equivalence with evidence. Decision-equivalent to the legacy
    /// [`eqsql_core::sigma_equivalent_via`] (pinned by the randomized
    /// differential suite); this path additionally materializes the
    /// witnesses the boolean tests only prove exist.
    fn equivalence(
        &self,
        chaser: &SolverChaser<'_>,
        sem: Semantics,
        q1: &CqQuery,
        q2: &CqQuery,
        config: &ChaseConfig,
    ) -> Result<Answer, Error> {
        let c1 = chaser.sound_chase(sem, q1, &self.sigma, &self.schema, config)?;
        let c2 = chaser.sound_chase(sem, q2, &self.sigma, &self.schema, config)?;
        match (c1.failed, c2.failed) {
            (true, true) => {
                return Ok(Answer::Equivalent {
                    certificate: EquivalenceCertificate::BothUnsatisfiable,
                });
            }
            (true, false) | (false, true) => {
                return Ok(Answer::NotEquivalent {
                    counterexample: self.equivalence_counterexample(chaser, sem, q1, q2, config),
                });
            }
            (false, false) => {}
        }
        let certificate = match sem {
            Semantics::Set => {
                let forward = containment_mapping(&c2.query, &c1.query);
                let backward = containment_mapping(&c1.query, &c2.query);
                match (forward, backward) {
                    (Some(forward), Some(backward)) => Some(EquivalenceCertificate::Set {
                        chased1: c1.query,
                        chased2: c2.query,
                        forward,
                        backward,
                    }),
                    _ => None,
                }
            }
            Semantics::Bag => {
                let is_set = |p| self.schema.is_set_valued(p);
                let n1 = eqsql_cq::iso::dedup_set_valued(&c1.query, is_set);
                let n2 = eqsql_cq::iso::dedup_set_valued(&c2.query, is_set);
                find_isomorphism(&n1, &n2).map(|bijection| EquivalenceCertificate::Iso {
                    normal1: n1,
                    normal2: n2,
                    bijection,
                })
            }
            Semantics::BagSet => {
                let n1 = canonical_representation(&c1.query);
                let n2 = canonical_representation(&c2.query);
                find_isomorphism(&n1, &n2).map(|bijection| EquivalenceCertificate::Iso {
                    normal1: n1,
                    normal2: n2,
                    bijection,
                })
            }
        };
        Ok(match certificate {
            Some(certificate) => Answer::Equivalent { certificate },
            None => Answer::NotEquivalent {
                counterexample: self.equivalence_counterexample(chaser, sem, q1, q2, config),
            },
        })
    }

    fn equivalence_counterexample(
        &self,
        chaser: &SolverChaser<'_>,
        sem: Semantics,
        q1: &CqQuery,
        q2: &CqQuery,
        config: &ChaseConfig,
    ) -> Option<Counterexample> {
        if !self.counterexamples {
            return None;
        }
        // Route the search's query chases through the shared cache —
        // they are exactly the chases that just produced the negative
        // verdict this witness decorates.
        let search = || {
            let db =
                separating_database_via(chaser, sem, q1, q2, &self.sigma, &self.schema, config)?;
            let cex = Counterexample { db, sem };
            cex.verify(q1, q2, &self.sigma, &self.schema).ok()?;
            Some(cex)
        };
        match chaser.trace {
            // The search's nested chases already bill Chase/Cache time;
            // Evidence gets only the remainder, keeping phases disjoint.
            Some(t) => t.time_excluding(Phase::Evidence, &[Phase::Chase, Phase::Cache], search),
            None => search(),
        }
    }

    /// Set containment with evidence. Decision-equivalent to
    /// [`eqsql_core::sigma_set_contained_via`].
    fn containment(
        &self,
        chaser: &SolverChaser<'_>,
        q1: &CqQuery,
        q2: &CqQuery,
        config: &ChaseConfig,
    ) -> Result<Answer, Error> {
        let c1 = chaser.sound_chase(Semantics::Set, q1, &self.sigma, &self.schema, config)?;
        if c1.failed {
            return Ok(Answer::Contained { certificate: ContainmentCertificate::EmptyLeft });
        }
        let c2 = chaser.sound_chase(Semantics::Set, q2, &self.sigma, &self.schema, config)?;
        if c2.failed {
            // q2 is empty under Σ while q1 is not: the canonical database
            // of (q1)_{Σ,S} exhibits the gap.
            return Ok(Answer::NotContained {
                counterexample: self.containment_counterexample(chaser.trace, &c1.query, q1, q2),
            });
        }
        match containment_mapping(q2, &c1.query) {
            Some(witness) => Ok(Answer::Contained {
                certificate: ContainmentCertificate::Mapping { chased1: c1.query, witness },
            }),
            None => Ok(Answer::NotContained {
                counterexample: self.containment_counterexample(chaser.trace, &c1.query, q1, q2),
            }),
        }
    }

    /// The canonical database of the chased premise is *the* implication
    /// counterexample (the terminal satisfies Σ; the failed conclusion
    /// check is witnessed by the canonical embedding). Built only when
    /// counterexample search is on; attached only if it replays, so a
    /// `NotImplied` verdict never carries evidence its own `verify` would
    /// reject.
    fn implication_counterexample(
        &self,
        trace: Option<&TraceCtx>,
        dep: &Dependency,
        chased_premise: &CqQuery,
    ) -> Option<ImplicationCounterexample> {
        if !self.counterexamples {
            return None;
        }
        let build = || {
            let cex = ImplicationCounterexample { db: canonical_database(chased_premise, 0).db };
            cex.verify(dep, &self.sigma).ok()?;
            Some(cex)
        };
        match trace {
            // No nested chases: the whole construction is Evidence time.
            Some(t) => t.time(Phase::Evidence, build),
            None => build(),
        }
    }

    fn containment_counterexample(
        &self,
        trace: Option<&TraceCtx>,
        chased1: &CqQuery,
        q1: &CqQuery,
        q2: &CqQuery,
    ) -> Option<Counterexample> {
        if !self.counterexamples {
            return None;
        }
        let search = || {
            let db = canonical_database(chased1, 0).db;
            let cex = Counterexample { db, sem: Semantics::Set };
            cex.verify_set_gap(q1, q2, &self.sigma).ok()?;
            Some(cex)
        };
        match trace {
            // This witness issues no chases of its own — the whole search
            // is Evidence time.
            Some(t) => t.time(Phase::Evidence, search),
            None => search(),
        }
    }

    /// The sound three-valued bag-containment procedure: chase both sides
    /// with the sound bag chase (equivalence-preserving on `D ⊨ Σ`), then
    /// try the multiset-onto sufficient condition and a Σ-repaired
    /// falsifier. Answers `BagContainmentOpen` when neither lands — the
    /// general problem is open \[18\].
    fn bag_containment(
        &self,
        chaser: &SolverChaser<'_>,
        q1: &CqQuery,
        q2: &CqQuery,
        config: &ChaseConfig,
    ) -> Result<Answer, Error> {
        let c1 = chaser.sound_chase(Semantics::Bag, q1, &self.sigma, &self.schema, config)?;
        if c1.failed {
            return Ok(Answer::BagContained { certificate: BagContainmentCertificate::EmptyLeft });
        }
        let c2 = chaser.sound_chase(Semantics::Bag, q2, &self.sigma, &self.schema, config)?;
        if !c2.failed {
            if let Some(witness) = onto_containment_mapping(&c1.query, &c2.query) {
                return Ok(Answer::BagContained {
                    certificate: BagContainmentCertificate::OntoMapping {
                        chased1: c1.query,
                        chased2: c2.query,
                        witness,
                    },
                });
            }
        }
        // Falsification: candidate databases from the chased queries,
        // repaired into models of Σ, verified to exhibit a multiplicity
        // gap on the *original* queries.
        let mut candidates: Vec<Database> = Vec::new();
        candidates.push(canonical_database(&c1.query, 0).db);
        if !c2.failed {
            if let Some(db) = find_non_containment_witness(&c1.query, &c2.query, 8) {
                candidates.push(db);
            }
        }
        for db in candidates {
            // Try the raw candidate first; only pay for the instance-chase
            // repair when it fails to verify (a candidate that already
            // satisfies Σ would repair to itself anyway).
            let cex = Counterexample { db, sem: Semantics::Bag };
            if cex.verify_bag_gap(q1, q2, &self.sigma, &self.schema).is_ok() {
                return Ok(Answer::BagNotContained { counterexample: cex });
            }
            let Some(db) = Self::repair(&cex.db, &self.sigma, config, &chaser.engine.guard) else {
                continue;
            };
            let cex = Counterexample { db, sem: Semantics::Bag };
            if cex.verify_bag_gap(q1, q2, &self.sigma, &self.schema).is_ok() {
                return Ok(Answer::BagNotContained { counterexample: cex });
            }
        }
        Ok(Answer::BagContainmentOpen)
    }

    fn repair(
        db: &Database,
        sigma: &DependencySet,
        config: &ChaseConfig,
        guard: &RunGuard,
    ) -> Option<Database> {
        match chase_database_guarded(db, sigma, config, guard) {
            Ok(r) if !r.failed => Some(r.db),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::{parse_dependencies, parse_dependency};

    fn example_4_1() -> (DependencySet, Schema) {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        (sigma, schema)
    }

    fn solver() -> Solver {
        let (sigma, schema) = example_4_1();
        Solver::builder(sigma, schema).build()
    }

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn equivalence_verdicts_carry_verified_evidence() {
        let s = solver();
        let q1 = q("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)");
        let q4 = q("q4(X) :- p(X,Y)");
        // Set: equivalent, with both containment mappings.
        let req =
            Request::Equivalent { q1: q1.clone(), q2: q4.clone(), opts: RequestOpts::default() };
        let v = s.decide(&req).unwrap();
        assert!(matches!(
            v.answer,
            Answer::Equivalent { certificate: EquivalenceCertificate::Set { .. } }
        ));
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        // Bag: not equivalent, with a verified separating database.
        let req = Request::Equivalent { q1, q2: q4, opts: RequestOpts::with_sem(Semantics::Bag) };
        let v = s.decide(&req).unwrap();
        match &v.answer {
            Answer::NotEquivalent { counterexample: Some(_) } => {}
            other => panic!("expected a witnessed NotEquivalent, got {other:?}"),
        }
        v.verify(&req, s.sigma(), s.schema()).unwrap();
    }

    #[test]
    fn bag_and_bag_set_equivalences_use_iso_certificates() {
        let s = solver();
        let q3 = q("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)");
        let q4 = q("q4(X) :- p(X,Y)");
        let req = Request::Equivalent {
            q1: q3,
            q2: q4.clone(),
            opts: RequestOpts::with_sem(Semantics::Bag),
        };
        let v = s.decide(&req).unwrap();
        assert!(matches!(
            v.answer,
            Answer::Equivalent { certificate: EquivalenceCertificate::Iso { .. } }
        ));
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        let q2v = q("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)");
        let req =
            Request::Equivalent { q1: q2v, q2: q4, opts: RequestOpts::with_sem(Semantics::BagSet) };
        let v = s.decide(&req).unwrap();
        assert!(v.is_positive());
        v.verify(&req, s.sigma(), s.schema()).unwrap();
    }

    #[test]
    fn containment_and_its_gap_witness() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let s = Solver::builder(sigma, schema).build();
        let qa = q("q(X) :- a(X)");
        let qab = q("q(X) :- a(X), b(X)");
        let req =
            Request::Contained { q1: qa.clone(), q2: qab.clone(), opts: RequestOpts::default() };
        let v = s.decide(&req).unwrap();
        assert!(matches!(v.answer, Answer::Contained { .. }));
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        // Without the dependency the containment fails, with a witness.
        let s2 = Solver::builder(DependencySet::new(), s.schema().clone()).build();
        let req = Request::Contained { q1: qa, q2: qab, opts: RequestOpts::default() };
        let v = s2.decide(&req).unwrap();
        match &v.answer {
            Answer::NotContained { counterexample: Some(_) } => {}
            other => panic!("expected witnessed NotContained, got {other:?}"),
        }
        v.verify(&req, s2.sigma(), s2.schema()).unwrap();
        // Bag semantics on a set-containment request is a taxonomy error.
        let req = Request::Contained {
            q1: q("q(X) :- a(X)"),
            q2: q("q(X) :- a(X)"),
            opts: RequestOpts::with_sem(Semantics::Bag),
        };
        assert!(matches!(s2.decide(&req), Err(Error::UnsupportedSemantics { .. })));
    }

    #[test]
    fn bag_containment_three_values() {
        let schema = Schema::all_bags(&[("p", 2), ("r", 1)]);
        let s = Solver::builder(DependencySet::new(), schema).build();
        let opts = RequestOpts::with_sem(Semantics::Bag);
        // m ≤ m²: contained, via the multiset-onto witness.
        let req = Request::BagContained {
            q1: q("q(X) :- p(X,Y)"),
            q2: q("q(X) :- p(X,Y), p(X,Y)"),
            opts,
        };
        let v = s.decide(&req).unwrap();
        assert!(matches!(v.answer, Answer::BagContained { .. }));
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        // m² ≥ m fails: not contained, witnessed by an amplified database.
        let req = Request::BagContained {
            q1: q("q(X) :- p(X,Y), r(X), r(X)"),
            q2: q("q(X) :- p(X,Y), r(X)"),
            opts,
        };
        let v = s.decide(&req).unwrap();
        assert!(matches!(v.answer, Answer::BagNotContained { .. }));
        v.verify(&req, s.sigma(), s.schema()).unwrap();
    }

    #[test]
    fn minimality_reformulation_and_implication() {
        let s = solver();
        let q1 = q("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)");
        let v =
            s.decide(&Request::Minimal { q: q1.clone(), opts: RequestOpts::default() }).unwrap();
        match v.answer {
            Answer::NotMinimal { witness } => {
                assert!(witness.reduced.body.len() < q1.body.len());
            }
            other => panic!("Q1 is not Σ-minimal, got {other:?}"),
        }
        let q4 = q("q4(X) :- p(X,Y)");
        let v =
            s.decide(&Request::Minimal { q: q4.clone(), opts: RequestOpts::default() }).unwrap();
        assert!(matches!(v.answer, Answer::Minimal));
        // C&B of Q1 under set semantics finds exactly Q4.
        let v = s.decide(&Request::Reformulate { q: q1, opts: RequestOpts::default() }).unwrap();
        match v.answer {
            Answer::Reformulated { reformulations, .. } => {
                assert_eq!(reformulations.len(), 1);
                assert!(eqsql_cq::are_isomorphic(&reformulations[0], &q4));
            }
            other => panic!("expected Reformulated, got {other:?}"),
        }
        // Implication through the same solver and cache.
        let dep = parse_dependency("p(X,Y) -> s(X,Z)").unwrap();
        let v = s.decide(&Request::Implies { dep, opts: RequestOpts::default() }).unwrap();
        assert!(matches!(v.answer, Answer::Implied { vacuous: false, .. }));
        let dep = parse_dependency("s(X,Z) -> p(X,Y)").unwrap();
        let v = s.decide(&Request::Implies { dep, opts: RequestOpts::default() }).unwrap();
        assert!(matches!(v.answer, Answer::NotImplied { .. }));
    }

    #[test]
    fn budget_overrides_and_error_taxonomy() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let schema = Schema::all_bags(&[("e", 2)]);
        let s = Solver::builder(sigma, schema).build();
        let req = Request::Equivalent {
            q1: q("q(X) :- e(X,Y)"),
            q2: q("q(X) :- e(X,Y), e(Y,Z)"),
            opts: RequestOpts { max_steps: Some(10), ..RequestOpts::default() },
        };
        assert!(matches!(s.decide(&req), Err(Error::BudgetExhausted { .. })));
        // An unrepairable instance is an egd failure.
        let sigma = parse_dependencies("s(X,Y) & s(X,Z) -> Y = Z.").unwrap();
        let schema = Schema::all_bags(&[("s", 2)]);
        let s = Solver::builder(sigma, schema).build();
        let mut db = Database::new();
        db.insert("s", eqsql_relalg::Tuple::ints([1, 2]), 1);
        db.insert("s", eqsql_relalg::Tuple::ints([1, 3]), 1);
        let req = Request::ChaseInstance { db, opts: RequestOpts::default() };
        assert_eq!(s.decide(&req).unwrap_err(), Error::EgdFailure { operation: "chase-instance" });
    }

    #[test]
    fn request_variant_fixes_semantics_regardless_of_solver_default() {
        // A bag-default solver must still answer set-containment (and a
        // set-default solver bag-containment): the variant fixes the
        // semantics, only an explicit conflicting override errors.
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let s = Solver::builder(sigma, schema).default_semantics(Semantics::Bag).build();
        let qa = q("q(X) :- a(X)");
        let qab = q("q(X) :- a(X), b(X)");
        let v = s
            .decide(&Request::Contained { q1: qa.clone(), q2: qab, opts: RequestOpts::default() })
            .unwrap();
        assert!(matches!(v.answer, Answer::Contained { .. }));
        let v = s
            .decide(&Request::BagContained { q1: qa.clone(), q2: qa, opts: RequestOpts::default() })
            .unwrap();
        assert!(matches!(v.answer, Answer::BagContained { .. }));
    }

    #[test]
    fn verify_rejects_mismatched_request_and_answer() {
        let s = solver();
        let q4 = q("q4(X) :- p(X,Y)");
        let req =
            Request::Equivalent { q1: q4.clone(), q2: q4.clone(), opts: RequestOpts::default() };
        let v = s.decide(&req).unwrap();
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        // The same verdict against a different request kind must fail.
        let wrong = Request::Minimal { q: q4, opts: RequestOpts::default() };
        assert!(v.verify(&wrong, s.sigma(), s.schema()).is_err());
    }

    #[test]
    fn tampered_minimality_witness_fails_structural_replay() {
        let s = solver();
        let q1 = q("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)");
        let req = Request::Minimal { q: q1.clone(), opts: RequestOpts::default() };
        let v = s.decide(&req).unwrap();
        v.verify(&req, s.sigma(), s.schema()).unwrap();
        // Grafting an atom the identification never had breaks the
        // sub-multiset property.
        let Answer::NotMinimal { witness } = &v.answer else { panic!("Q1 is not minimal") };
        let mut tampered = witness.clone();
        tampered.reduced = q("q1(X) :- p(X,Y), p(Y,X)");
        let forged = Verdict { answer: Answer::NotMinimal { witness: tampered }, stats: v.stats };
        assert!(forged.verify(&req, s.sigma(), s.schema()).is_err());
    }

    #[test]
    fn instance_chase_repairs_into_a_model() {
        let sigma = parse_dependencies("a(X) -> b(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1)]);
        let s = Solver::builder(sigma.clone(), schema).build();
        let mut db = Database::new();
        db.insert("a", eqsql_relalg::Tuple::ints([1]), 1);
        let v = s.decide(&Request::ChaseInstance { db, opts: RequestOpts::default() }).unwrap();
        match v.answer {
            Answer::ChasedInstance { db, steps } => {
                assert!(steps >= 1);
                assert!(eqsql_deps::satisfaction::db_satisfies_all(&db, &sigma));
            }
            other => panic!("expected ChasedInstance, got {other:?}"),
        }
    }

    #[test]
    fn decide_all_orders_verdicts_and_counts() {
        let s = solver();
        let q3 = q("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)");
        let q4 = q("q4(X) :- p(X,Y)");
        let reqs = vec![
            Request::Equivalent {
                q1: q3.clone(),
                q2: q4.clone(),
                opts: RequestOpts::with_sem(Semantics::Bag),
            },
            Request::Minimal { q: q4.clone(), opts: RequestOpts::default() },
            Request::Contained { q1: q4, q2: q3, opts: RequestOpts::default() },
        ];
        let report = s.decide_all(&reqs);
        assert_eq!(report.verdicts.len(), 3);
        assert!(report.verdicts.iter().all(|v| v.as_ref().unwrap().is_positive()));
        let stats = s.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.batches, 1);
        assert!(stats.cache.misses > 0);
    }

    #[test]
    fn trace_sink_gets_one_event_per_batch_request() {
        let (sigma, schema) = example_4_1();
        let sink = Arc::new(eqsql_obs::VecSink::new());
        let s = Solver::builder(sigma, schema)
            .trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build();
        let q3 = q("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)");
        let q4 = q("q4(X) :- p(X,Y)");
        let reqs = vec![
            Request::Equivalent { q1: q3.clone(), q2: q4.clone(), opts: RequestOpts::default() },
            // Same pair again: the second decision rides the cache.
            Request::Equivalent { q1: q3, q2: q4, opts: RequestOpts::default() },
        ];
        let report = s.decide_all(&reqs);
        assert!(report.verdicts.iter().all(|v| v.is_ok()));
        let lines = sink.lines();
        assert_eq!(lines.len(), 2, "one event per request: {lines:?}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with("event=request "), "{line}");
            assert!(line.contains(&format!("req={i} ")), "{line}");
            assert!(line.contains("verb=equivalent "), "{line}");
            assert!(line.contains("terminal=ok "), "{line}");
        }
        // The repeat decision's chases all hit: its event attributes them
        // to the memory tier and bills no fresh engine work.
        assert!(lines[1].contains("misses=0"), "{}", lines[1]);
        assert!(lines[1].contains("engine_steps=0"), "{}", lines[1]);
        assert!(!lines[1].contains("mem_hits=0"), "{}", lines[1]);
        // Aggregates flowed into the solver's stats.
        let stats = s.stats();
        assert_eq!(stats.latency.count, 2);
        assert!(stats.phase.chase_us + stats.phase.cache_us + stats.phase.evidence_us > 0);
    }
}
