//! Batched Σ-equivalence sessions — the legacy pairwise API, now a thin
//! veneer over [`Solver`].
//!
//! [`BatchSession`] predates the Solver and keeps its shape for existing
//! callers: one Σ, many `(Q1, Q2, semantics)` pairs, per-pair
//! [`EquivOutcome`] verdicts and batch statistics. Internally every pair
//! is a [`Request::Equivalent`] decided by a Solver built without
//! counterexample search (the boolean surface of this API cannot carry a
//! witness, so there is no point paying for one). New code should use the
//! Solver directly — its verdicts carry evidence and its request family
//! covers far more than pairwise equivalence.

use crate::cache::ChaseCache;
use crate::solver::{Answer, Request, RequestOpts, Solver};
use eqsql_chase::{ChaseConfig, ChaseError};
use eqsql_core::EquivOutcome;
use eqsql_cq::CqQuery;
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};
use std::sync::Arc;
use std::time::Duration;

/// One Σ-equivalence question: is `q1 ≡_{Σ,sem} q2`?
#[derive(Clone, Debug)]
pub struct EquivRequest {
    /// The semantics to decide under.
    pub sem: Semantics,
    /// Left query.
    pub q1: CqQuery,
    /// Right query.
    pub q2: CqQuery,
}

/// Aggregate statistics of one [`BatchSession::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Pairs decided.
    pub pairs: usize,
    /// Verdict counts.
    pub equivalent: usize,
    /// Pairs decided not equivalent.
    pub not_equivalent: usize,
    /// Pairs with an inconclusive (budget) outcome.
    pub unknown: usize,
    /// Chase-cache hits attributable to this run.
    pub cache_hits: u64,
    /// Chase-cache misses attributable to this run.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// The result of a batch: per-pair verdicts (in request order) + stats.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// `verdicts[i]` answers `pairs[i]`.
    pub verdicts: Vec<EquivOutcome>,
    /// Aggregate counters for the run.
    pub stats: BatchStats,
}

/// A Σ-equivalence session: one fixed Σ and schema, many query pairs.
///
/// Sessions are cheap; the expensive state (the chase cache) lives behind
/// an [`Arc`] and is shared across sessions via [`BatchSession::with_cache`]
/// — a long-running server keeps one cache and opens a session per
/// request batch.
pub struct BatchSession {
    solver: Solver,
}

impl BatchSession {
    /// A session over Σ with a fresh default cache and one worker.
    pub fn new(sigma: DependencySet, schema: Schema, config: ChaseConfig) -> BatchSession {
        BatchSession {
            solver: Solver::builder(sigma, schema)
                .chase_config(config)
                .counterexamples(false)
                .build(),
        }
    }

    /// Shares an existing cache (e.g. warmed by earlier batches).
    pub fn with_cache(mut self, cache: Arc<ChaseCache>) -> BatchSession {
        self.solver.set_cache(cache);
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> BatchSession {
        self.solver.set_threads(threads);
        self
    }

    /// The session's cache handle.
    pub fn cache(&self) -> &Arc<ChaseCache> {
        self.solver.cache()
    }

    /// The underlying Solver, for callers graduating to the full request
    /// family on the same Σ/cache.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Decides every pair, returning verdicts in request order.
    ///
    /// Pairs are pulled from a shared counter by the configured workers,
    /// so a batch of heterogeneous pair costs self-balances. Determinism:
    /// each verdict depends only on its own pair (the cache changes
    /// *which* computation produced a terminal result, never the result
    /// itself), so the output is independent of scheduling.
    pub fn run(&self, pairs: &[EquivRequest]) -> BatchOutcome {
        let requests: Vec<Request> = pairs
            .iter()
            .map(|p| Request::Equivalent {
                q1: p.q1.clone(),
                q2: p.q2.clone(),
                opts: RequestOpts::with_sem(p.sem),
            })
            .collect();
        let report = self.solver.decide_all(&requests);
        let verdicts: Vec<EquivOutcome> = report
            .verdicts
            .into_iter()
            .map(|v| match v {
                Ok(verdict) => match verdict.answer {
                    Answer::Equivalent { .. } => EquivOutcome::Equivalent,
                    Answer::NotEquivalent { .. } => EquivOutcome::NotEquivalent,
                    other => unreachable!("equivalence request answered with {other:?}"),
                },
                Err(e) => EquivOutcome::Unknown(e.as_chase_error().unwrap_or(
                    // Equivalence decisions only raise chase-level errors;
                    // translate defensively rather than panicking a batch.
                    ChaseError::BudgetExhausted { steps: 0 },
                )),
            })
            .collect();
        let stats = BatchStats {
            pairs: pairs.len(),
            equivalent: verdicts.iter().filter(|v| v.is_equivalent()).count(),
            not_equivalent: verdicts
                .iter()
                .filter(|v| matches!(v, EquivOutcome::NotEquivalent))
                .count(),
            unknown: verdicts.iter().filter(|v| matches!(v, EquivOutcome::Unknown(_))).count(),
            cache_hits: report.stats.cache_hits,
            cache_misses: report.stats.cache_misses,
            threads: report.threads,
            wall: report.stats.wall,
        };
        BatchOutcome { verdicts, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn example_4_1() -> (DependencySet, Schema) {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        (sigma, schema)
    }

    fn requests() -> Vec<EquivRequest> {
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        vec![
            EquivRequest { sem: Semantics::Set, q1: q1.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q1.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q3.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::BagSet, q1: q2.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q2, q2: q4.clone() },
            EquivRequest { sem: Semantics::Set, q1: q3, q2: q4 },
        ]
    }

    fn expect(outcome: &BatchOutcome) {
        use EquivOutcome::*;
        let want = [Equivalent, NotEquivalent, Equivalent, Equivalent, NotEquivalent, Equivalent];
        assert_eq!(outcome.verdicts.len(), want.len());
        for (i, (got, want)) in outcome.verdicts.iter().zip(want.iter()).enumerate() {
            assert_eq!(got, want, "pair {i}");
        }
    }

    #[test]
    fn batch_matches_unbatched_verdicts_across_thread_counts() {
        let (sigma, schema) = example_4_1();
        for threads in [1, 4, 8] {
            let session = BatchSession::new(sigma.clone(), schema.clone(), ChaseConfig::default())
                .with_threads(threads);
            let outcome = session.run(&requests());
            expect(&outcome);
            assert_eq!(outcome.stats.pairs, 6);
            assert_eq!(outcome.stats.equivalent, 4);
            assert_eq!(outcome.stats.not_equivalent, 2);
            assert_eq!(outcome.stats.unknown, 0);
        }
    }

    #[test]
    fn shared_sigma_amortizes_chases_across_pairs() {
        let (sigma, schema) = example_4_1();
        let session = BatchSession::new(sigma, schema, ChaseConfig::default());
        let outcome = session.run(&requests());
        expect(&outcome);
        // 6 pairs → 12 chases demanded; q4 recurs per semantics, q1/q2
        // recur across semantics rows, so the cache must absorb repeats.
        assert!(
            outcome.stats.cache_hits >= 3,
            "expected repeated-subquery hits, got {:?}",
            outcome.stats
        );
        // A second identical batch is served entirely from cache.
        let again = session.run(&requests());
        expect(&again);
        assert_eq!(again.stats.cache_misses, 0, "{:?}", again.stats);
    }

    #[test]
    fn unknown_outcomes_flow_through_batches() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let schema = Schema::all_bags(&[("e", 2)]);
        // Single worker so the second pair deterministically probes the
        // budget-exhaustion outcome the first pair cached.
        let session = BatchSession::new(sigma, schema, ChaseConfig::with_max_steps(10));
        let q1 = parse_query("q(X) :- e(X,Y)").unwrap();
        let q2 = parse_query("q(X) :- e(X,Y), e(Y,Z)").unwrap();
        let out = session.run(&[
            EquivRequest { sem: Semantics::Set, q1: q1.clone(), q2: q2.clone() },
            EquivRequest { sem: Semantics::Set, q1, q2 },
        ]);
        assert_eq!(out.stats.unknown, 2);
        // The second pair's chase was served from the cached failure.
        assert!(out.stats.cache_hits >= 1, "{:?}", out.stats);
    }
}
