//! Batched Σ-equivalence sessions.
//!
//! Real consumers of an equivalence oracle — rewrite validators, view
//! selectors, the C&B backchase itself — issue *streams* of query pairs
//! over one fixed Σ. [`BatchSession`] makes that stream the serving unit:
//! Σ is regularized once, every chase is routed through a shared
//! [`ChaseCache`], and the pairs of a batch are dispatched across a pool
//! of worker threads (the per-pair decisions are independent; the cache is
//! the only shared state and is sharded for exactly this access pattern).

use crate::cache::ChaseCache;
use crate::canon::ChaseContext;
use eqsql_chase::{ChaseConfig, ChaseError, SoundChased};
use eqsql_core::{sigma_equivalent_via, EquivOutcome, SoundChaser};
use eqsql_cq::CqQuery;
use eqsql_deps::{regularize_set, DependencySet};
use eqsql_relalg::{Schema, Semantics};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One Σ-equivalence question: is `q1 ≡_{Σ,sem} q2`?
#[derive(Clone, Debug)]
pub struct EquivRequest {
    /// The semantics to decide under.
    pub sem: Semantics,
    /// Left query.
    pub q1: CqQuery,
    /// Right query.
    pub q2: CqQuery,
}

/// Aggregate statistics of one [`BatchSession::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Pairs decided.
    pub pairs: usize,
    /// Verdict counts.
    pub equivalent: usize,
    /// Pairs decided not equivalent.
    pub not_equivalent: usize,
    /// Pairs with an inconclusive (budget) outcome.
    pub unknown: usize,
    /// Chase-cache hits attributable to this run.
    pub cache_hits: u64,
    /// Chase-cache misses attributable to this run.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// The result of a batch: per-pair verdicts (in request order) + stats.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// `verdicts[i]` answers `pairs[i]`.
    pub verdicts: Vec<EquivOutcome>,
    /// Aggregate counters for the run.
    pub stats: BatchStats,
}

/// A Σ-equivalence session: one fixed Σ and schema, many query pairs.
///
/// Sessions are cheap; the expensive state (the chase cache) lives behind
/// an [`Arc`] and is shared across sessions via [`BatchSession::with_cache`]
/// — a long-running server keeps one cache and opens a session per
/// request batch.
pub struct BatchSession {
    sigma: DependencySet,
    schema: Schema,
    config: ChaseConfig,
    cache: Arc<ChaseCache>,
    threads: usize,
    /// Σ regularized once at session construction.
    sigma_reg: Arc<DependencySet>,
    /// Context keys precomputed per semantics (Σ is fixed for the whole
    /// session), indexed Set/Bag/BagSet.
    ctx: [ChaseContext; 3],
}

/// The session's [`SoundChaser`]: routes every chase through the shared
/// cache via the precomputed context fingerprints, so the per-chase cost
/// of a warm batch is a query fingerprint + one shard probe — Σ is never
/// re-rendered, re-hashed or re-regularized. Hits and misses are counted
/// locally: the cache's global counters mix in every concurrent session
/// sharing it, these are exactly this run's.
struct SessionChaser<'a> {
    session: &'a BatchSession,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SoundChaser for SessionChaser<'_> {
    fn sound_chase(
        &self,
        sem: Semantics,
        q: &CqQuery,
        _sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> Result<SoundChased, ChaseError> {
        let s = self.session;
        let ctx = &s.ctx[match sem {
            Semantics::Set => 0,
            Semantics::Bag => 1,
            Semantics::BagSet => 2,
        }];
        let (result, hit) = s.cache.chase_keyed_counted(ctx, &s.sigma_reg, sem, q, schema, config);
        if hit { &self.hits } else { &self.misses }.fetch_add(1, Ordering::Relaxed);
        result
    }
}

impl BatchSession {
    /// A session over Σ with a fresh default cache and one worker.
    pub fn new(sigma: DependencySet, schema: Schema, config: ChaseConfig) -> BatchSession {
        // Regularize Σ and build the context keys up front so not even the
        // first pair pays for either more than once. Both are independent
        // of the cache handle, so `with_cache` swaps caches for free.
        let sigma_reg = Arc::new(regularize_set(&sigma));
        let reg_text: Arc<str> = sigma_reg.to_string().into();
        let ctx = [Semantics::Set, Semantics::Bag, Semantics::BagSet]
            .map(|sem| ChaseContext::with_text(sem, Arc::clone(&reg_text), &schema, &config));
        BatchSession {
            sigma,
            schema,
            config,
            cache: Arc::new(ChaseCache::default()),
            threads: 1,
            sigma_reg,
            ctx,
        }
    }

    /// Shares an existing cache (e.g. warmed by earlier batches).
    pub fn with_cache(mut self, cache: Arc<ChaseCache>) -> BatchSession {
        self.cache = cache;
        self
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> BatchSession {
        self.threads = threads.max(1);
        self
    }

    /// The session's cache handle.
    pub fn cache(&self) -> &Arc<ChaseCache> {
        &self.cache
    }

    /// Decides every pair, returning verdicts in request order.
    ///
    /// Pairs are pulled from a shared counter by `threads` workers, so a
    /// batch of heterogeneous pair costs self-balances. Determinism: each
    /// verdict depends only on its own pair (the cache changes *which*
    /// computation produced a terminal result, never the result itself), so
    /// the output is independent of scheduling.
    pub fn run(&self, pairs: &[EquivRequest]) -> BatchOutcome {
        let start = Instant::now();
        let verdicts: Vec<OnceLock<EquivOutcome>> =
            (0..pairs.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(pairs.len()).max(1);
        let chaser =
            SessionChaser { session: self, hits: AtomicU64::new(0), misses: AtomicU64::new(0) };
        let decide = |i: usize| {
            let p = &pairs[i];
            sigma_equivalent_via(
                &chaser,
                p.sem,
                &p.q1,
                &p.q2,
                &self.sigma,
                &self.schema,
                &self.config,
            )
        };
        if workers == 1 {
            for (i, slot) in verdicts.iter().enumerate() {
                let _ = slot.set(decide(i));
            }
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pairs.len() {
                            break;
                        }
                        let _ = verdicts[i].set(decide(i));
                    });
                }
            });
        }
        let verdicts: Vec<EquivOutcome> = verdicts
            .into_iter()
            .map(|slot| slot.into_inner().expect("every pair decided"))
            .collect();
        let stats = BatchStats {
            pairs: pairs.len(),
            equivalent: verdicts.iter().filter(|v| v.is_equivalent()).count(),
            not_equivalent: verdicts
                .iter()
                .filter(|v| matches!(v, EquivOutcome::NotEquivalent))
                .count(),
            unknown: verdicts.iter().filter(|v| matches!(v, EquivOutcome::Unknown(_))).count(),
            cache_hits: chaser.hits.load(Ordering::Relaxed),
            cache_misses: chaser.misses.load(Ordering::Relaxed),
            threads: workers,
            wall: start.elapsed(),
        };
        BatchOutcome { verdicts, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn example_4_1() -> (DependencySet, Schema) {
        let sigma = parse_dependencies(
            "p(X,Y) -> s(X,Z) & t(X,V,W).\n\
             p(X,Y) -> t(X,Y,W).\n\
             p(X,Y) -> r(X).\n\
             p(X,Y) -> u(X,Z) & t(X,Y,W).\n\
             s(X,Y) & s(X,Z) -> Y = Z.\n\
             t(X,Y,W1) & t(X,Y,W2) -> W1 = W2.",
        )
        .unwrap();
        let mut schema = Schema::all_bags(&[("p", 2), ("r", 1), ("s", 2), ("t", 3), ("u", 2)]);
        schema.mark_set_valued(eqsql_cq::Predicate::new("s"));
        schema.mark_set_valued(eqsql_cq::Predicate::new("t"));
        (sigma, schema)
    }

    fn requests() -> Vec<EquivRequest> {
        let q1 = parse_query("q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)").unwrap();
        let q2 = parse_query("q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)").unwrap();
        let q3 = parse_query("q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)").unwrap();
        let q4 = parse_query("q4(X) :- p(X,Y)").unwrap();
        vec![
            EquivRequest { sem: Semantics::Set, q1: q1.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q1.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q3.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::BagSet, q1: q2.clone(), q2: q4.clone() },
            EquivRequest { sem: Semantics::Bag, q1: q2, q2: q4.clone() },
            EquivRequest { sem: Semantics::Set, q1: q3, q2: q4 },
        ]
    }

    fn expect(outcome: &BatchOutcome) {
        use EquivOutcome::*;
        let want = [Equivalent, NotEquivalent, Equivalent, Equivalent, NotEquivalent, Equivalent];
        assert_eq!(outcome.verdicts.len(), want.len());
        for (i, (got, want)) in outcome.verdicts.iter().zip(want.iter()).enumerate() {
            assert_eq!(got, want, "pair {i}");
        }
    }

    #[test]
    fn batch_matches_unbatched_verdicts_across_thread_counts() {
        let (sigma, schema) = example_4_1();
        for threads in [1, 4, 8] {
            let session = BatchSession::new(sigma.clone(), schema.clone(), ChaseConfig::default())
                .with_threads(threads);
            let outcome = session.run(&requests());
            expect(&outcome);
            assert_eq!(outcome.stats.pairs, 6);
            assert_eq!(outcome.stats.equivalent, 4);
            assert_eq!(outcome.stats.not_equivalent, 2);
            assert_eq!(outcome.stats.unknown, 0);
        }
    }

    #[test]
    fn shared_sigma_amortizes_chases_across_pairs() {
        let (sigma, schema) = example_4_1();
        let session = BatchSession::new(sigma, schema, ChaseConfig::default());
        let outcome = session.run(&requests());
        expect(&outcome);
        // 6 pairs → 12 chases demanded; q4 recurs per semantics, q1/q2
        // recur across semantics rows, so the cache must absorb repeats.
        assert!(
            outcome.stats.cache_hits >= 3,
            "expected repeated-subquery hits, got {:?}",
            outcome.stats
        );
        // A second identical batch is served entirely from cache.
        let again = session.run(&requests());
        expect(&again);
        assert_eq!(again.stats.cache_misses, 0, "{:?}", again.stats);
    }

    #[test]
    fn unknown_outcomes_flow_through_batches() {
        let sigma = parse_dependencies("e(X,Y) -> e(Y,Z).").unwrap();
        let schema = Schema::all_bags(&[("e", 2)]);
        // Single worker so the second pair deterministically probes the
        // budget-exhaustion outcome the first pair cached.
        let session = BatchSession::new(sigma, schema, ChaseConfig::with_max_steps(10));
        let q1 = parse_query("q(X) :- e(X,Y)").unwrap();
        let q2 = parse_query("q(X) :- e(X,Y), e(Y,Z)").unwrap();
        let out = session.run(&[
            EquivRequest { sem: Semantics::Set, q1: q1.clone(), q2: q2.clone() },
            EquivRequest { sem: Semantics::Set, q1, q2 },
        ]);
        assert_eq!(out.stats.unknown, 2);
        // The second pair's chase was served from the cached failure.
        assert!(out.stats.cache_hits >= 1, "{:?}", out.stats);
    }
}
