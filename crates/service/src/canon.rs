//! Renaming-invariant canonicalization of `(query, Σ)` cache keys.
//!
//! The chase-result cache must identify chase inputs **up to variable
//! renaming**: `sound_chase` commutes with α-renaming (the engine renames
//! Σ apart from the query and draws fresh variables deterministically from
//! the query's own names, so the terminal queries of two α-equivalent
//! inputs are isomorphic, with the bijection extending the input renaming).
//! Variable *names* therefore must not leak into the cache key.
//!
//! The canonicalizer computes a **renaming-invariant fingerprint** by
//! Weisfeiler–Leman-style color refinement on the query's variables:
//!
//! 1. each variable starts with a color derived from its head positions
//!    (heads are positional — `q(X,Y)` and `q(Y,X)` must differ);
//! 2. each round, an atom's color is its predicate plus the per-position
//!    colors of its arguments (constants contribute their value), and a
//!    variable's new color folds in the sorted multiset of
//!    `(atom color, position)` pairs it occurs at;
//! 3. after `|vars|`-bounded rounds, the query fingerprint hashes the head
//!    colors (in order) with the sorted multiset of atom colors.
//!
//! Isomorphic queries always collide (the invariants are computed from
//! renaming-independent structure only); non-isomorphic queries *may*
//! collide, so the cache confirms every probe with an exact
//! [`eqsql_cq::find_isomorphism`] check and keeps distinct entries per
//! fingerprint bucket — a fingerprint collision costs a failed match, never
//! a wrong answer (see the cache-poisoning guard tests).

use eqsql_chase::ChaseConfig;
use eqsql_cq::{CqQuery, Term, Var};
use eqsql_deps::DependencySet;
use eqsql_relalg::{Schema, Semantics};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// FNV-1a. The fingerprint sits on the cache's *hit* path (it is computed
/// per probe), so it uses a cheap multiply-xor hash rather than the
/// DoS-resistant default — collisions are resolved by exact isomorphism
/// checks anyway, never trusted.
struct Fnv(u64);

impl Hasher for Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn h64(x: impl Hash) -> u64 {
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    x.hash(&mut h);
    h.finish()
}

/// A renaming-invariant fingerprint of a conjunctive query.
///
/// Guaranteed equal for isomorphic queries (in the [`eqsql_cq::iso`] sense:
/// positional head correspondence, bodies as multisets); equality for
/// non-isomorphic queries is possible but harmless to the cache.
pub fn query_fingerprint(q: &CqQuery) -> u64 {
    let vars = q.all_vars();
    // Round 0: head participation. Interned symbol ids are process-local,
    // so hash the *positions*, never the names.
    let mut color: HashMap<Var, u64> = vars
        .iter()
        .map(|v| {
            let head_positions: Vec<usize> = q
                .head
                .iter()
                .enumerate()
                .filter(|(_, t)| **t == Term::Var(*v))
                .map(|(i, _)| i)
                .collect();
            (*v, h64(("head", head_positions)))
        })
        .collect();
    // Refine until colors must have stabilized: each round either splits a
    // color class or changes nothing, so |vars| rounds suffice (capped for
    // pathological inputs — soundness never depends on reaching the fixpoint).
    let rounds = vars.len().clamp(2, 16);
    let mut atom_colors: Vec<u64> = Vec::new();
    for _ in 0..rounds {
        atom_colors = q
            .body
            .iter()
            .map(|a| {
                let arg_colors: Vec<u64> = a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => color[v],
                        Term::Const(c) => h64(("const", c)),
                    })
                    .collect();
                h64((a.pred.name(), arg_colors))
            })
            .collect();
        let mut next: HashMap<Var, u64> = HashMap::with_capacity(color.len());
        for v in &vars {
            let mut occ: Vec<(u64, usize)> = Vec::new();
            for (a, &ac) in q.body.iter().zip(atom_colors.iter()) {
                for (i, t) in a.args.iter().enumerate() {
                    if *t == Term::Var(*v) {
                        occ.push((ac, i));
                    }
                }
            }
            occ.sort_unstable();
            next.insert(*v, h64((color[v], occ)));
        }
        color = next;
    }
    let head_colors: Vec<u64> = q
        .head
        .iter()
        .map(|t| match t {
            Term::Var(v) => color[v],
            Term::Const(c) => h64(("const", c)),
        })
        .collect();
    atom_colors.sort_unstable();
    h64((q.head.len(), head_colors, atom_colors))
}

/// The chase *context*: everything besides the query that the sound
/// chase's outcome depends on — Σ (textual; α-variant Σs merely miss), the
/// semantics, the schema's set-valuedness flags (consulted under bag
/// semantics) and the chase budgets (a cached budget-exhaustion outcome is
/// only valid for the budgets it was observed under).
///
/// Carries both a fingerprint for sharding/bucketing *and* the exact key
/// material: unlike the query side (where an isomorphism check confirms
/// every probe), a context fingerprint collision cannot be detected after
/// the fact, so cache entries compare contexts field-for-field via
/// [`ChaseContext::same`] before being trusted. Construct once per
/// (Σ, semantics) — a `BatchSession` holds one per semantics — and reuse;
/// construction renders Σ to text.
#[derive(Clone, Debug)]
pub struct ChaseContext {
    fingerprint: u64,
    sem: Semantics,
    sigma_text: std::sync::Arc<str>,
    set_valued: std::sync::Arc<[String]>,
    max_steps: usize,
    max_atoms: usize,
    /// Was the chase delta-seeded (`EngineOpts::delta_seeding`)? Delta
    /// seeding changes the firing order, so terminal queries are only
    /// Σ-equivalent — not isomorphic — to the reference engine's; cached
    /// results therefore must not cross the flag. Parallel probes are
    /// deliberately *not* part of the key: step sequences (and results)
    /// are bit-identical at any probe count.
    delta_seeding: bool,
}

impl ChaseContext {
    /// Builds the context key. `sigma` should be the Σ actually handed to
    /// the chase (callers that pre-regularize pass the regularized set, so
    /// original Σs sharing a regularized form share cache entries —
    /// Proposition 4.1 makes that an equivalence).
    pub fn new(
        sem: Semantics,
        sigma: &DependencySet,
        schema: &Schema,
        config: &ChaseConfig,
    ) -> ChaseContext {
        ChaseContext::with_text(sem, sigma.to_string().into(), schema, config, false)
    }

    /// [`ChaseContext::new`] from an already-rendered Σ — rendering is the
    /// expensive half, so callers building several contexts over one Σ
    /// (a session's three semantics, the cache's per-Σ memo) share it.
    pub(crate) fn with_text(
        sem: Semantics,
        sigma_text: std::sync::Arc<str>,
        schema: &Schema,
        config: &ChaseConfig,
        delta_seeding: bool,
    ) -> ChaseContext {
        let mut set_valued: Vec<String> =
            schema.set_valued_relations().into_iter().map(|p| p.name().to_string()).collect();
        set_valued.sort_unstable();
        ChaseContext::from_parts(
            sem,
            sigma_text,
            set_valued.into(),
            config.max_steps,
            config.max_atoms,
            delta_seeding,
        )
    }

    /// Rebuilds a context from its exact key material — the decode path of
    /// the persistence tier ([`crate::cache::persist`]), which stores the
    /// material (never the hash) and must recompute the fingerprint with
    /// the same recipe [`ChaseContext::with_text`] uses, so a persisted
    /// entry lands in the same bucket a live probe would.
    pub(crate) fn from_parts(
        sem: Semantics,
        sigma_text: std::sync::Arc<str>,
        set_valued: std::sync::Arc<[String]>,
        max_steps: usize,
        max_atoms: usize,
        delta_seeding: bool,
    ) -> ChaseContext {
        let sem_tag: u8 = match sem {
            Semantics::Set => 0,
            Semantics::Bag => 1,
            Semantics::BagSet => 2,
        };
        let fingerprint = h64((
            sem_tag,
            sigma_text.as_ref(),
            set_valued.as_ref(),
            max_steps,
            max_atoms,
            delta_seeding,
        ));
        ChaseContext {
            fingerprint,
            sem,
            sigma_text,
            set_valued,
            max_steps,
            max_atoms,
            delta_seeding,
        }
    }

    /// The context's bucketing fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The semantics this context keys.
    pub(crate) fn sem(&self) -> Semantics {
        self.sem
    }

    /// The rendered (regularized) Σ this context keys.
    pub(crate) fn sigma_text(&self) -> &std::sync::Arc<str> {
        &self.sigma_text
    }

    /// The sorted set-valued relation names this context keys.
    pub(crate) fn set_valued(&self) -> &[String] {
        &self.set_valued
    }

    /// The step budget this context keys.
    pub(crate) fn max_steps(&self) -> usize {
        self.max_steps
    }

    /// The atom budget this context keys.
    pub(crate) fn max_atoms(&self) -> usize {
        self.max_atoms
    }

    /// Was the keyed chase delta-seeded?
    pub(crate) fn delta_seeding(&self) -> bool {
        self.delta_seeding
    }

    /// Exact equality of the key material — the authority a fingerprint
    /// match is confirmed against.
    pub fn same(&self, other: &ChaseContext) -> bool {
        self.fingerprint == other.fingerprint
            && self.sem == other.sem
            && self.max_steps == other.max_steps
            && self.max_atoms == other.max_atoms
            && self.delta_seeding == other.delta_seeding
            && self.set_valued == other.set_valued
            && self.sigma_text == other.sigma_text
    }
}

/// The fingerprint of [`ChaseContext::new`], for callers that only need
/// the hash (the exact-match material is what the cache itself stores).
pub fn context_fingerprint(
    sem: Semantics,
    sigma: &DependencySet,
    schema: &Schema,
    config: &ChaseConfig,
) -> u64 {
    ChaseContext::new(sem, sigma, schema, config).fingerprint()
}

/// The sharded cache key: context and query fingerprints combined.
pub fn cache_key(query_fp: u64, context_fp: u64) -> u64 {
    h64((query_fp, context_fp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqsql_cq::parse_query;
    use eqsql_deps::parse_dependencies;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn fingerprint_is_renaming_invariant() {
        let a = q("q(X) :- p(X,Y), s(Y,Z), s(Y,W)");
        let b = q("q(A1) :- s(B2,C3), p(A1,B2), s(B2,D4)");
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_structure() {
        let base = q("q(X) :- p(X,Y), s(Y,Z)");
        for other in [
            "q(X) :- p(X,Y), s(X,Z)",         // different join shape
            "q(Y) :- p(X,Y), s(Y,Z)",         // different head variable
            "q(X) :- p(X,Y), s(Y,Z), s(Y,Z)", // duplicate subgoal (multiset!)
            "q(X) :- p(X,Y), s(Y,3)",         // constant
        ] {
            assert_ne!(query_fingerprint(&base), query_fingerprint(&q(other)), "{other}");
        }
    }

    #[test]
    fn fingerprint_ignores_atom_order_and_name() {
        let a = q("q1(X) :- p(X,Y), r(X), s(Y,Z)");
        let b = q("q2(X) :- s(Y,Z), r(X), p(X,Y)");
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn head_constants_participate() {
        assert_ne!(
            query_fingerprint(&q("q(X, 1) :- p(X,Y)")),
            query_fingerprint(&q("q(X, 2) :- p(X,Y)")),
        );
    }

    #[test]
    fn context_separates_sigma_semantics_and_budget() {
        let s1 = parse_dependencies("a(X) -> b(X).").unwrap();
        let s2 = parse_dependencies("a(X) -> c(X).").unwrap();
        let schema = Schema::all_bags(&[("a", 1), ("b", 1), ("c", 1)]);
        let cfg = ChaseConfig::default();
        let f = |sem, sigma, cfg: &ChaseConfig| context_fingerprint(sem, sigma, &schema, cfg);
        assert_ne!(f(Semantics::Set, &s1, &cfg), f(Semantics::Set, &s2, &cfg));
        assert_ne!(f(Semantics::Set, &s1, &cfg), f(Semantics::Bag, &s1, &cfg));
        assert_ne!(
            f(Semantics::Set, &s1, &cfg),
            f(Semantics::Set, &s1, &ChaseConfig::with_max_steps(7)),
        );
        let mut marked = schema.clone();
        marked.mark_set_valued(eqsql_cq::Predicate::new("b"));
        assert_ne!(
            context_fingerprint(Semantics::Bag, &s1, &schema, &cfg),
            context_fingerprint(Semantics::Bag, &s1, &marked, &cfg),
        );
    }
}
