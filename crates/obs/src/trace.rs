//! Per-request trace spans and pluggable event sinks.
//!
//! A [`TraceCtx`] rides through one request (one `Solver` decision,
//! including every retry attempt) and accumulates where the time went —
//! the [`Phase`] accumulators — plus attribution counters: engine steps
//! and scans, chase steps including cache-replayed ones, memory- vs
//! disk-tier cache hits, misses, attempts. At the end of the request the
//! owner renders it into **one structured event line** in a stable
//! `key=value` format and hands it to a [`TraceSink`].
//!
//! ## Reading an event line
//!
//! ```text
//! event=request req=7 verb=equivalent outcome=equivalent terminal=ok \
//!   attempts=1 wall_us=1840 queue_us=310 regularize_us=0 chase_us=1210 \
//!   cache_us=55 evidence_us=0 steps=44 engine_steps=44 scans=61 \
//!   mem_hits=0 disk_hits=0 misses=2
//! ```
//!
//! * `wall_us` counts from **batch intake** (or decision start for a
//!   direct `decide`) to event emission, so `queue_us` — the admission
//!   wait before a worker picked the request up — is inside it, and the
//!   phase accumulators always sum to ≤ `wall_us`.
//! * `chase_us` is time inside the chase engine; `cache_us` is probe and
//!   replay time in the chase cache; `evidence_us` is counterexample /
//!   certificate construction *excluding* the nested chases it issues
//!   (those are already counted under `chase_us`/`cache_us` — see
//!   [`TraceCtx::time_excluding`] — so no microsecond is counted twice).
//! * `steps` counts chase steps the decision consumed including replayed
//!   cached ones; `engine_steps`/`scans` count fresh engine work only.
//! * `terminal` marks how the request ended: `ok`, `error` (a decided
//!   negative outcome, e.g. budget exhaustion), `deadline`, `cancelled`,
//!   `shed`, or `panic`. A dead run still emits a complete event — torn
//!   telemetry would make exactly the interesting requests invisible.
//!
//! All accumulators are relaxed atomics: a `TraceCtx` is shared by
//! reference across the helper layers of one decision, never across
//! decisions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The phases of one request's lifetime. Phases are disjoint: each
/// microsecond of a request is attributed to at most one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Admission-queue wait: batch intake until a worker started the
    /// decision. Callers that queue requests *before* batch intake (the
    /// `eqsql_net` server reads lines off a socket into a window) shift
    /// the origin backwards so this phase — and the request's wall clock
    /// — starts at first receipt, not at intake.
    Queue,
    /// Σ-regularization and context-key construction (only non-zero when
    /// a request overrides the chase budgets; the default-budget context
    /// is precomputed at solver build time).
    Regularize,
    /// Time inside the chase engine (fresh chases and instance repairs).
    Chase,
    /// Chase-cache probe and replay time (memory and disk tiers).
    Cache,
    /// Evidence construction — counterexample search and certificate
    /// assembly — excluding the nested chases it issues.
    Evidence,
}

/// Every phase, in rendering order.
pub const PHASES: [Phase; 5] =
    [Phase::Queue, Phase::Regularize, Phase::Chase, Phase::Cache, Phase::Evidence];

impl Phase {
    /// The event-line key of this phase's accumulator.
    pub fn key(self) -> &'static str {
        match self {
            Phase::Queue => "queue_us",
            Phase::Regularize => "regularize_us",
            Phase::Chase => "chase_us",
            Phase::Cache => "cache_us",
            Phase::Evidence => "evidence_us",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Queue => 0,
            Phase::Regularize => 1,
            Phase::Chase => 2,
            Phase::Cache => 3,
            Phase::Evidence => 4,
        }
    }
}

/// The span of one request. See the module docs.
#[derive(Debug, Default)]
pub struct TraceCtx {
    phase_us: [AtomicU64; 5],
    steps: AtomicU64,
    engine_steps: AtomicU64,
    scans: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    attempts: AtomicU64,
}

impl TraceCtx {
    /// A fresh, empty span.
    pub fn new() -> TraceCtx {
        TraceCtx::default()
    }

    /// Adds `us` microseconds to `phase`.
    pub fn add_us(&self, phase: Phase, us: u64) {
        self.phase_us[phase.index()].fetch_add(us, Ordering::Relaxed);
    }

    /// `phase`'s accumulated microseconds.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        self.phase_us[phase.index()].load(Ordering::Relaxed)
    }

    /// Runs `f`, attributing its wall time to `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.add_us(phase, start.elapsed().as_micros() as u64);
        r
    }

    /// Runs `f`, attributing its wall time to `phase` **minus** whatever
    /// `f` itself attributed to the `excluding` phases — the tool for
    /// phases that nest (evidence search issues chases): the outer phase
    /// gets only its own time, and phase sums stay ≤ wall time.
    pub fn time_excluding<R>(&self, phase: Phase, excluding: &[Phase], f: impl FnOnce() -> R) -> R {
        let before: u64 = excluding.iter().map(|&p| self.phase_us(p)).sum();
        let start = Instant::now();
        let r = f();
        let elapsed = start.elapsed().as_micros() as u64;
        let nested: u64 = excluding.iter().map(|&p| self.phase_us(p)).sum::<u64>() - before;
        self.add_us(phase, elapsed.saturating_sub(nested));
        r
    }

    /// Adds chase steps consumed (replayed cache hits included).
    pub fn add_steps(&self, n: u64) {
        self.steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds fresh engine work (committed steps, scans) from a probe.
    pub fn add_engine_work(&self, steps: u64, scans: u64) {
        self.engine_steps.fetch_add(steps, Ordering::Relaxed);
        self.scans.fetch_add(scans, Ordering::Relaxed);
    }

    /// One memory-tier cache hit.
    pub fn mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One disk-tier cache hit.
    pub fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One cache miss (a fresh chase ran).
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One decision attempt started (retries call this again).
    pub fn attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Attempts recorded so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The sum of every phase accumulator, µs.
    pub fn phase_total_us(&self) -> u64 {
        self.phase_us.iter().map(|p| p.load(Ordering::Relaxed)).sum()
    }

    /// Renders the finished span as one `key=value` event line. The key
    /// set and order are stable — scripts parse this.
    pub fn render(
        &self,
        req: u64,
        verb: &str,
        outcome: &str,
        terminal: &str,
        wall_us: u64,
    ) -> String {
        let mut line = format!(
            "event=request req={req} verb={verb} outcome={outcome} terminal={terminal} \
             attempts={}",
            self.attempts.load(Ordering::Relaxed).max(1)
        );
        line.push_str(&format!(" wall_us={wall_us}"));
        for phase in PHASES {
            line.push_str(&format!(" {}={}", phase.key(), self.phase_us(phase)));
        }
        line.push_str(&format!(
            " steps={} engine_steps={} scans={} mem_hits={} disk_hits={} misses={}",
            self.steps.load(Ordering::Relaxed),
            self.engine_steps.load(Ordering::Relaxed),
            self.scans.load(Ordering::Relaxed),
            self.mem_hits.load(Ordering::Relaxed),
            self.disk_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        ));
        line
    }
}

/// Where finished event lines go. Implementations must be cheap and
/// non-blocking-ish: sinks are called on worker threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one event line (no trailing newline).
    fn emit(&self, line: &str);
}

/// A sink collecting lines in memory — for tests and small tools.
#[derive(Debug, Default)]
pub struct VecSink(Mutex<Vec<String>>);

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Every line emitted so far, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().expect("sink lock").clone()
    }
}

impl TraceSink for VecSink {
    fn emit(&self, line: &str) {
        self.0.lock().expect("sink lock").push(line.to_string());
    }
}

/// A sink appending one line per event to any writer (a `BufWriter<File>`
/// for `eqsql-serve --trace`). Errors are deliberately swallowed:
/// telemetry must never fail a request.
pub struct WriteSink<W: std::io::Write + Send>(Mutex<W>);

impl<W: std::io::Write + Send> WriteSink<W> {
    /// Wraps `w`.
    pub fn new(w: W) -> WriteSink<W> {
        WriteSink(Mutex::new(w))
    }
}

impl<W: std::io::Write + Send> TraceSink for WriteSink<W> {
    fn emit(&self, line: &str) {
        let mut w = self.0.lock().expect("sink lock");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_render_stably() {
        let t = TraceCtx::new();
        t.attempt();
        t.add_us(Phase::Queue, 10);
        t.add_us(Phase::Chase, 100);
        t.add_us(Phase::Chase, 50);
        t.add_steps(7);
        t.add_engine_work(5, 9);
        t.mem_hit();
        t.miss();
        assert_eq!(t.phase_us(Phase::Chase), 150);
        assert_eq!(t.phase_total_us(), 160);
        let line = t.render(3, "equivalent", "equivalent", "ok", 200);
        assert_eq!(
            line,
            "event=request req=3 verb=equivalent outcome=equivalent terminal=ok attempts=1 \
             wall_us=200 queue_us=10 regularize_us=0 chase_us=150 cache_us=0 evidence_us=0 \
             steps=7 engine_steps=5 scans=9 mem_hits=1 disk_hits=0 misses=1"
        );
    }

    #[test]
    fn time_excluding_subtracts_nested_phase_time() {
        let t = TraceCtx::new();
        t.time_excluding(Phase::Evidence, &[Phase::Chase, Phase::Cache], || {
            // A nested "chase" that itself takes wall time.
            t.time(Phase::Chase, || std::thread::sleep(std::time::Duration::from_millis(5)));
        });
        // Evidence got only the (tiny) non-chase remainder; the 5ms went
        // to Chase. Bound generously — this is an attribution test, not
        // a timing benchmark.
        assert!(t.phase_us(Phase::Chase) >= 4_000);
        assert!(t.phase_us(Phase::Evidence) < t.phase_us(Phase::Chase));
    }

    #[test]
    fn vec_sink_collects_lines() {
        let sink = VecSink::new();
        sink.emit("event=request req=0");
        sink.emit("event=request req=1");
        assert_eq!(sink.lines().len(), 2);
    }

    #[test]
    fn write_sink_appends_newline_terminated_lines() {
        let sink = WriteSink::new(Vec::<u8>::new());
        sink.emit("a=1");
        sink.emit("b=2");
        let WriteSink(m) = sink;
        let buf = m.into_inner().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a=1\nb=2\n");
    }
}
