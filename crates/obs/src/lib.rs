//! # eqsql-obs — in-tree observability: counters, histograms, traces
//!
//! Chase cost under embedded dependencies is intrinsically spiky —
//! termination behavior varies wildly with Σ — so the serving layer's
//! ops knobs (shedding, deadlines, retry escalation) are tunable only
//! against *tail* latency, not averages. This crate is the zero-dependency
//! substrate for that visibility, built like the vendored shims: small,
//! API-compatible-in-spirit with `metrics`/`tracing`, no registry access
//! required.
//!
//! Three layers, each usable alone:
//!
//! * [`hist`] — [`Histogram`]: log-bucketed (octaves with linear
//!   sub-buckets), all-atomic, mergeable, with p50/p90/p99/max extraction
//!   whose error is bounded by the bucket width (≤ 1/16 relative).
//! * [`registry`] — [`Registry`]: named [`Counter`]s and [`Histogram`]s
//!   behind get-or-create handles, rendered as stable sorted
//!   `key=value` text for end-of-run dumps.
//! * [`trace`] — [`TraceCtx`]: one per-request span accumulating phase
//!   timings (queue wait, Σ-regularization, engine time, cache probes,
//!   evidence construction) and attribution counters, emitted as a
//!   structured `key=value` event line through a pluggable [`TraceSink`].
//!
//! ## The off switch
//!
//! Instrumentation must be free when nobody is looking. Two mechanisms:
//!
//! * The global [`enabled`] flag (one relaxed [`AtomicBool`]): probe
//!   sites that would otherwise take timestamps check it first, so the
//!   disabled cost is a branch on one relaxed atomic load.
//! * Handle-level `Option`s: [`StepProbe::default`] holds no state and
//!   every callback is a single `Option` test — the same pattern as the
//!   engine's unguarded `RunGuard` — so the engine stays step-identical
//!   whether or not the process ever enables observability.
//!
//! Neither mechanism may change *results*: every consumer of this crate
//! is pinned by a differential suite asserting verdicts, step counts and
//! cache attribution are bit-identical with instrumentation disabled and
//! enabled.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSummary};
pub use registry::{Counter, Registry};
pub use trace::{Phase, TraceCtx, TraceSink, VecSink, WriteSink, PHASES};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The global observability gate, default **off**.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is observability globally enabled? One relaxed atomic load — the
/// whole cost of a disabled probe site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flips the global observability gate. Process-wide; flip it once at
/// startup (`eqsql-serve --metrics`, the load harness), not per request.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

struct ProbeInner {
    steps: AtomicU64,
    scans: AtomicU64,
}

/// A chase-engine work probe: counts committed engine steps and
/// dependency scans (premise hom-searches issued).
///
/// The default probe is **disarmed** — no allocation, every callback one
/// `Option` test — so it can ride inside `EngineOpts` unconditionally,
/// exactly like the unguarded `RunGuard`. Clones share state, so one
/// armed probe aggregates across every chase of a decision. The probe
/// never influences the engine (it is pure accounting), so it is not
/// part of any cache key.
#[derive(Clone, Default)]
pub struct StepProbe(Option<Arc<ProbeInner>>);

impl std::fmt::Debug for StepProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("StepProbe(disarmed)"),
            Some(i) => f
                .debug_struct("StepProbe")
                .field("steps", &i.steps.load(Ordering::Relaxed))
                .field("scans", &i.scans.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl StepProbe {
    /// An armed probe: counts until dropped.
    pub fn armed() -> StepProbe {
        StepProbe(Some(Arc::new(ProbeInner { steps: AtomicU64::new(0), scans: AtomicU64::new(0) })))
    }

    /// Is this probe counting?
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// One committed engine step (egd rewrite or tgd fire).
    #[inline]
    pub fn on_step(&self) {
        if let Some(i) = &self.0 {
            i.steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `n` dependency scans issued against the current body snapshot.
    #[inline]
    pub fn on_scans(&self, n: u64) {
        if let Some(i) = &self.0 {
            i.scans.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Committed steps seen so far (0 for a disarmed probe).
    pub fn steps(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.steps.load(Ordering::Relaxed))
    }

    /// Scans seen so far (0 for a disarmed probe).
    pub fn scans(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.scans.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_probe_counts_nothing_and_clones_share_state() {
        let p = StepProbe::default();
        assert!(!p.is_armed());
        p.on_step();
        p.on_scans(7);
        assert_eq!((p.steps(), p.scans()), (0, 0));

        let p = StepProbe::armed();
        let q = p.clone();
        p.on_step();
        q.on_step();
        q.on_scans(3);
        assert_eq!((p.steps(), p.scans()), (2, 3));
    }
}
