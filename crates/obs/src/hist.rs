//! Log-bucketed, all-atomic latency histograms.
//!
//! The bucket layout is HdrHistogram-lite: values below [`SUB`] get one
//! bucket each (exact), and every octave above that is split into
//! [`SUB`] linear sub-buckets, so the relative error of any extracted
//! quantile is bounded by the sub-bucket width — at most `1/SUB`
//! (6.25%) of the value. 976 buckets cover the whole `u64` range, so a
//! histogram is ~8 KiB of atomics: cheap enough to hold one per solver
//! and one per load-harness worker and merge at the end.
//!
//! Everything is relaxed atomics — [`Histogram::record`] is lock-free
//! and wait-free on every platform with native fetch-add — and
//! [`Histogram::merge`] makes per-thread histograms aggregatable without
//! coordination. Quantiles are extracted from a [`HistogramSummary`]
//! snapshot; a snapshot taken while writers are active is a consistent
//! *approximation* (counts may trail the sum by in-flight records),
//! which is the usual and acceptable trade for lock-freedom.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (and the width of the exact linear range).
pub const SUB: u64 = 16;
const SUB_BITS: u32 = SUB.trailing_zeros();
/// Total bucket count: the linear range plus 60 octaves of `SUB`
/// sub-buckets reach `u64::MAX`.
const BUCKETS: usize = (61 * SUB) as usize;

/// The bucket index of `v`. Monotone non-decreasing in `v`, and `v`
/// always lies within [`bucket_bounds`]`(bucket_index(v))`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS + 1;
    let sub = (v >> (msb - SUB_BITS)) & (SUB - 1);
    octave as usize * SUB as usize + sub as usize
}

/// The inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i.min(BUCKETS - 1);
    if (i as u64) < SUB {
        return (i as u64, i as u64);
    }
    let octave = (i as u64 / SUB) as u32;
    let sub = i as u64 % SUB;
    let lo = (SUB + sub) << (octave - 1);
    let width = 1u64 << (octave - 1);
    (lo, lo + (width - 1))
}

/// A mergeable, all-atomic, log-bucketed histogram of `u64` samples
/// (by convention: microseconds). See the module docs for the layout.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; relaxed ordering throughout.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds every sample of `other` into `self` (bucket-wise; `other`
    /// is unchanged). Per-thread histograms merge into a global one
    /// without any coordination beyond this call.
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, clamped to the true
    /// recorded maximum (so `quantile(1.0) == max`, exactly). Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time [`HistogramSummary`].
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            mean: if count == 0 { 0 } else { self.sum.load(Ordering::Relaxed) / count },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of a [`Histogram`]: count, mean, p50/p90/p99 and the exact
/// max, in the histogram's unit (microseconds by convention).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (exact sum / count, truncated).
    pub mean: u64,
    /// Median (bucket upper bound; ≤ 6.25% relative error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// The exact maximum sample.
    pub max: u64,
}

impl std::fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "count={} mean={} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_range_is_exact() {
        let h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.quantile(1.0), SUB - 1);
        // Every value below SUB has its own bucket: the median of 0..16
        // is exact.
        assert_eq!(h.quantile(0.5), 7);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn extreme_values_round_trip() {
        for v in [0, 1, SUB - 1, SUB, SUB + 1, 1 << 30, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        }
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.summary().max, u64::MAX);
    }

    #[test]
    fn bucket_layout_is_contiguous() {
        // Buckets tile the u64 range with no gaps and no overlaps.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} does not start where {} ended", i - 1);
            assert!(hi >= lo);
            if i == BUCKETS - 1 {
                assert_eq!(hi, u64::MAX);
                break;
            }
            expected_lo = hi + 1;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// No value falls outside its bucket's range.
        #[test]
        fn value_within_its_bucket(v in any::<u64>()) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            prop_assert!(lo <= v && v <= hi);
        }

        /// The bucket index is monotone in the value.
        #[test]
        fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (a.min(b), a.max(b));
            prop_assert!(bucket_index(a) <= bucket_index(b));
        }

        /// Quantiles are monotone in q, bounded by max, and at least the
        /// true value's bucket lower bound at q = 1.
        #[test]
        fn quantiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..64)
        ) {
            let h = Histogram::new();
            let mut max = 0;
            for &v in &values {
                h.record(v);
                max = max.max(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
            let mut prev = 0;
            for &q in &qs {
                let x = h.quantile(q);
                prop_assert!(x >= prev, "quantile not monotone at {}", q);
                prop_assert!(x <= max);
                prev = x;
            }
            prop_assert_eq!(h.quantile(1.0), max);
        }

        /// Merging two histograms is record-equivalent: bucket counts,
        /// count, sum-derived mean and max all match recording the
        /// concatenation.
        #[test]
        fn merge_is_record_equivalent(
            a in proptest::collection::vec(0u64..1_000_000_000, 0..32),
            b in proptest::collection::vec(0u64..1_000_000_000, 0..32)
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let all = Histogram::new();
            for &v in &a { ha.record(v); all.record(v); }
            for &v in &b { hb.record(v); all.record(v); }
            ha.merge(&hb);
            prop_assert_eq!(ha.summary(), all.summary());
        }
    }
}
