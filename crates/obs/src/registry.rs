//! A named-metric registry: get-or-create [`Counter`]s and
//! [`Histogram`]s behind `Arc` handles, rendered as stable sorted
//! `key=value` text.
//!
//! Lookup takes a read lock on a `HashMap` once per *handle*, not per
//! increment: callers fetch their handles at construction time and then
//! touch only relaxed atomics on the hot path. The registry itself is
//! cheap enough to be per-solver; a process-wide one is just a
//! `static`/`OnceLock` away if a consumer wants it.

use crate::hist::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A named monotone counter (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters and histograms. See the module docs.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created (at zero) on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created (empty) on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("registry lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("registry lock");
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Renders every metric as one line each, sorted by name — counters
    /// as `name value`, histograms as `name count=… mean=… p50=… p90=…
    /// p99=… max=…` — so dumps diff cleanly across runs.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (name, c) in self.counters.read().expect("registry lock").iter() {
            lines.push(format!("{name} {}", c.get()));
        }
        for (name, h) in self.histograms.read().expect("registry lock").iter() {
            lines.push(format!("{name} {}", h.summary()));
        }
        lines.sort_unstable();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_render_is_sorted() {
        let r = Registry::new();
        r.counter("z.last").add(3);
        r.counter("a.first").inc();
        // Same name, same handle.
        r.counter("a.first").inc();
        assert_eq!(r.counter("a.first").get(), 2);
        r.histogram("m.latency_us").record(100);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a.first 2");
        assert!(lines[1].starts_with("m.latency_us count=1"));
        assert_eq!(lines[2], "z.last 3");
    }
}
