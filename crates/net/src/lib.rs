//! # eqsql-net — a TCP front end for the [`eqsql_service::Solver`]
//!
//! The serving layer (`eqsql_service`) decides batches; this crate puts a
//! socket in front of it. Std-only by design — `std::net` blocking I/O
//! plus the workspace's usual scoped-thread idioms, no async runtime —
//! following the thin-bin/fat-library split: [`Server`] and [`Client`]
//! live here as library types, and the `eqsql-serve` / `netdrive`
//! binaries are argument parsing around them.
//!
//! * [`server`] — [`Server::start`] binds a listener and runs a bounded
//!   accept loop (connection limit, per-connection read/write timeouts).
//!   Each connection pipelines: a reader thread parses request lines and
//!   answers control verbs while a dispatcher thread feeds decoded
//!   requests through [`eqsql_service::Solver::decide_all_streaming`],
//!   writing one response line per verdict *as it completes* — the
//!   admission queue, deadlines, cancellation and retry of
//!   [`eqsql_service::BatchOptions`] apply unchanged over the network.
//!   [`Server::drain`] (or the wire verb `drain`) is the
//!   SIGTERM-equivalent: stop accepting, cancel in-flight work through
//!   the shared [`eqsql_service::Cancel`] token, flush responses, log a
//!   final stats line.
//! * [`client`] — [`Client`], a small blocking client (connect, send,
//!   iterate responses) used by the tests, by `netdrive`, and by
//!   `loadgen --connect` for open-loop latency measurement over a real
//!   socket.
//! * [`proto`] — the line grammar itself: rendering and parsing of
//!   response lines, request-id tagging, evidence summaries.
//! * [`json`] — the hand-rolled (dependency-free) JSON encoding of
//!   [`eqsql_service::SolverStats`] behind the `stats` verb, plus a
//!   strict validator the tests check it with.
//!
//! ## Wire protocol
//!
//! Everything is newline-delimited UTF-8 text; one line, one message, in
//! both directions. No length prefixes, no binary framing. A line is at
//! most [`eqsql_service::MAX_LINE_BYTES`] bytes; longer lines are
//! answered with a parse-error response and discarded without killing
//! the connection.
//!
//! ### Requests (client → server)
//!
//! A request line is the `eqsql_service::request` verb grammar verbatim
//! — exactly what a request-file line looks like — optionally preceded
//! by an `id=N` tag:
//!
//! ```text
//! id=7 pair: set | q(X) :- p(X,Y) | q(X) :- p(X,Y), s(X,Z)
//! contains: | q(X) :- p(X,Y), s(X,Z) | q(X) :- p(X,Y)
//! minimal: set | q(X) :- p(X,Y), s(X,Z)
//! cnb: bag | q(X) :- p(X,Y)
//! implies: p(X,Y) -> s(X,W).
//! ```
//!
//! The verb family, options field (semantics, `max_steps=`/`max_atoms=`/
//! `deadline_ms=` overrides) and query/dependency syntax are those of
//! [`eqsql_service::parse_request_line`]; the differences from a request
//! file are the ones that rustdoc spells out — the schema and Σ are
//! fixed at server startup (file-header keywords like `sigma:` are
//! rejected; unknown relations are rejected), and an `implies:` line
//! carries exactly one dependency. The `id` tags responses for
//! out-of-order completion: requests on one connection pipeline freely
//! and verdicts stream back in *completion* order, not submission order.
//! Lines without a tag get a server-assigned per-connection sequence
//! number. Empty lines and `#` comments are ignored.
//!
//! Three **control verbs** (also `id`-taggable, no colon) are handled by
//! the reader thread immediately, jumping any queued decisions:
//!
//! ```text
//! ping            → pong id=N
//! stats           → stats id=N {"requests":…,"cache":{…},…}
//! drain           → draining id=N       (then the whole server drains)
//! ```
//!
//! ### Responses (server → client)
//!
//! Every decided request produces exactly one `verdict` line of stable
//! `key=value` fields (space-separated; order fixed; new keys append
//! before `msg`, which is always last and runs to end of line):
//!
//! ```text
//! verdict id=7 verb=equivalent outcome=equivalent terminal=ok positive=true
//!         evidence=containment-homs steps=12 hits=0 misses=2 wall_us=873
//! verdict id=8 verb=implies outcome=not-implied terminal=ok positive=false
//!         evidence=witness-db steps=4 hits=1 misses=0 wall_us=97
//! verdict id=9 verb=equivalent outcome=cancelled terminal=cancelled
//!         positive=false evidence=none steps=310 hits=0 misses=1
//!         wall_us=5120 msg=cancelled after 310 chase steps
//! ```
//!
//! (Shown wrapped; on the wire each is one line.) `verb` is the request
//! label, `outcome` the answer/error label, and `terminal` one of `ok`,
//! `error`, `deadline`, `cancelled`, `shed`, `panic` — the same
//! vocabulary as the `event=request` trace lines ([`eqsql_service::Error::labels`]).
//! `evidence` is a one-token summary of the certificate the verdict
//! carries (`containment-homs`, `isomorphism`, `witness-db`,
//! `reformulations=N`, `vacuous`, `none`, …). `steps`/`hits`/`misses`
//! are the decision's chase-step and cache accounting; `wall_us` is
//! measured from the socket read. With `ServerConfig::trace_timings` on
//! (`eqsql-serve --listen --trace`), five per-phase fields `queue_us=`
//! `regularize_us=` `chase_us=` `cache_us=` `evidence_us=` appear after
//! `wall_us`. Malformed request lines get the same shape —
//! `outcome=parse-error terminal=error` with the parser's message in
//! `msg=` — and the connection stays up; over-limit connections get one
//! `busy max=N` line and are closed.
//!
//! ### Lifecycle
//!
//! A client may close its write half (or the whole socket) whenever it
//! has sent everything; the server finishes deciding what was queued on
//! that connection, streams the verdicts, and closes. On `drain` the
//! server stops accepting, cancels in-flight decisions (they complete
//! with `terminal=cancelled` verdict lines — still one response per
//! request), flushes every connection, and exits its accept loop with a
//! final `stats:`-prefixed log line on stderr.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::Client;
pub use json::{solver_stats_json, validate_json};
pub use proto::{Response, WireVerdict};
pub use server::{Server, ServerConfig, ServerReport};
