//! A small blocking client for the wire protocol — enough for tests,
//! `netdrive`, and `loadgen --connect`; not a connection pool. One
//! [`Client`] is one connection; requests pipeline (send many, then
//! iterate [`Client::recv`]), and the convenience calls ([`Client::ping`],
//! [`Client::stats`], [`Client::drain`]) buffer any verdict lines that
//! arrive ahead of their reply so nothing is lost to interleaving.

use crate::proto::{parse_response, Response, WireVerdict};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to an `eqsql_net` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Responses read past while waiting for a specific reply.
    pending: VecDeque<Response>,
}

impl Client {
    /// Connects. No handshake happens — a server at its connection limit
    /// answers the first read with [`Response::Busy`] and closes.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 0, pending: VecDeque::new() })
    }

    /// Bounds how long [`Client::recv`] blocks. `None` (the default)
    /// waits forever — fine for drivers that know how many responses are
    /// owed, wrong for anything interactive.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line — the `eqsql_service::request` verb
    /// grammar, without a trailing newline — tagged with a fresh id,
    /// which is returned for matching the response.
    pub fn send(&mut self, line: &str) -> io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        self.send_raw(&format!("id={id} {line}"))?;
        Ok(id)
    }

    /// Sends a line verbatim (no id tag is added; the server will assign
    /// sequence ids to untagged request lines).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Half-closes the write side: tells the server this client has sent
    /// everything, so the connection ends once owed responses are read.
    pub fn finish_sending(&mut self) -> io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// The next response, in arrival order; `None` once the server has
    /// closed the connection.
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        if let Some(r) = self.pending.pop_front() {
            return Ok(Some(r));
        }
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Ok(Some(parse_response(&line)));
        }
    }

    /// The next `verdict` response, buffering nothing — any other
    /// response kind read on the way is queued for a later [`Client::recv`].
    pub fn recv_verdict(&mut self) -> io::Result<Option<WireVerdict>> {
        let mut skipped = VecDeque::new();
        let got = loop {
            match self.recv()? {
                None => break None,
                Some(Response::Verdict(v)) => break Some(v),
                Some(other) => skipped.push_back(other),
            }
        };
        // Preserve arrival order among the non-verdict responses.
        while let Some(r) = skipped.pop_back() {
            self.pending.push_front(r);
        }
        Ok(got)
    }

    /// Round-trips a `ping`. An error (or `Ok(false)`) means the
    /// connection is gone.
    pub fn ping(&mut self) -> io::Result<bool> {
        self.next_id += 1;
        let id = self.next_id;
        self.send_raw(&format!("id={id} ping"))?;
        self.wait_for(|r| matches!(r, Response::Pong { id: got } if *got == id))
            .map(|r| r.is_some())
    }

    /// Fetches the server's live [`eqsql_service::SolverStats`] as one
    /// line of JSON (validate with [`crate::json::validate_json`]).
    /// `None` if the server closed before answering.
    pub fn stats(&mut self) -> io::Result<Option<String>> {
        self.next_id += 1;
        let id = self.next_id;
        self.send_raw(&format!("id={id} stats"))?;
        let got = self.wait_for(|r| matches!(r, Response::Stats { id: got, .. } if *got == id))?;
        Ok(got.map(|r| match r {
            Response::Stats { json, .. } => json,
            _ => unreachable!("wait_for matched a Stats response"),
        }))
    }

    /// Asks the server to drain (graceful shutdown). Returns once the
    /// `draining` acknowledgement arrives; responses for in-flight
    /// requests (with `terminal=cancelled`) may still follow before the
    /// connection closes.
    pub fn drain(&mut self) -> io::Result<()> {
        self.next_id += 1;
        let id = self.next_id;
        self.send_raw(&format!("id={id} drain"))?;
        self.wait_for(|r| matches!(r, Response::Draining { id: got } if *got == id))?;
        Ok(())
    }

    /// Reads until `want` matches (returning that response) or the
    /// connection closes (`None`); everything read past is buffered for
    /// [`Client::recv`] in order.
    fn wait_for(&mut self, want: impl Fn(&Response) -> bool) -> io::Result<Option<Response>> {
        let mut skipped = VecDeque::new();
        let got = loop {
            match self.recv()? {
                None => break None,
                Some(r) if want(&r) => break Some(r),
                Some(r) => skipped.push_back(r),
            }
        };
        while let Some(r) = skipped.pop_back() {
            self.pending.push_front(r);
        }
        Ok(got)
    }
}
