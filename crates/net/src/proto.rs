//! The wire grammar: request-id tagging, control verbs, response-line
//! rendering and parsing. See the crate docs for the protocol itself;
//! this module is the one place the `key=value` layout is spelled out,
//! shared by the server (rendering) and the client (parsing) so the two
//! cannot drift apart.

use eqsql_service::{
    Answer, BagContainmentCertificate, ContainmentCertificate, DecisionStats,
    EquivalenceCertificate, Error, Verdict,
};
use std::fmt::Write as _;

/// A control verb, handled by the connection's reader thread immediately
/// rather than queued behind decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Liveness probe → `pong`.
    Ping,
    /// Live counters → one-line `stats` JSON.
    Stats,
    /// Graceful shutdown of the whole server.
    Drain,
}

/// Splits a request line's optional leading `id=N` tag from the payload.
/// Works on raw bytes (the payload may not be UTF-8 yet); a malformed tag
/// is left in place for the parser to reject as payload.
pub fn split_id(line: &[u8]) -> (Option<u64>, &[u8]) {
    let Some(rest) = line.strip_prefix(b"id=") else {
        return (None, line);
    };
    let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
    if digits == 0 {
        return (None, line);
    }
    let (num, tail) = rest.split_at(digits);
    let Some(tail) = tail.strip_prefix(b" ") else {
        return (None, line);
    };
    let id = std::str::from_utf8(num).ok().and_then(|s| s.parse().ok());
    match id {
        Some(id) => (Some(id), trim_ascii_start(tail)),
        None => (None, line), // overflowed u64: let the parser complain
    }
}

fn trim_ascii_start(mut b: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

/// Recognizes a control verb (the payload after any `id=` tag).
pub fn control(payload: &[u8]) -> Option<Control> {
    match payload {
        b"ping" => Some(Control::Ping),
        b"stats" => Some(Control::Stats),
        b"drain" => Some(Control::Drain),
        _ => None,
    }
}

/// One token summarizing the evidence a verdict carries — which
/// certificate shape certifies a positive answer, whether a negative one
/// found a materialized witness. Never contains spaces.
pub fn evidence_summary(verdict: &Result<Verdict, Error>) -> String {
    let Ok(v) = verdict else { return "none".into() };
    let witness = |found: bool| if found { "witness-db" } else { "none" };
    match &v.answer {
        Answer::Equivalent { certificate } => match certificate {
            EquivalenceCertificate::BothUnsatisfiable => "both-unsatisfiable".into(),
            EquivalenceCertificate::Set { .. } => "containment-homs".into(),
            EquivalenceCertificate::Iso { .. } => "isomorphism".into(),
        },
        Answer::NotEquivalent { counterexample } => witness(counterexample.is_some()).into(),
        Answer::Contained { certificate } => match certificate {
            ContainmentCertificate::EmptyLeft => "empty-left".into(),
            ContainmentCertificate::Mapping { .. } => "containment-hom".into(),
        },
        Answer::NotContained { counterexample } => witness(counterexample.is_some()).into(),
        Answer::BagContained { certificate } => match certificate {
            BagContainmentCertificate::EmptyLeft => "empty-left".into(),
            BagContainmentCertificate::OntoMapping { .. } => "onto-hom".into(),
        },
        Answer::BagNotContained { .. } => "witness-db".into(),
        Answer::BagContainmentOpen => "open".into(),
        Answer::Minimal => "no-witness".into(),
        Answer::NotMinimal { .. } => "reduction-witness".into(),
        Answer::Reformulated { reformulations, .. } => {
            format!("reformulations={}", reformulations.len())
        }
        Answer::Implied { vacuous: true, .. } => "vacuous".into(),
        Answer::Implied { .. } => "conclusion-hom".into(),
        Answer::NotImplied { counterexample, .. } => witness(counterexample.is_some()).into(),
        Answer::ChasedInstance { steps, .. } => format!("repaired={steps}"),
    }
}

/// Renders one `verdict` response line (without the trailing newline).
/// Field order is part of the protocol: anything new goes before `msg`,
/// which is always last because it runs to end of line.
pub fn render_verdict(
    id: u64,
    verb: &str,
    verdict: &Result<Verdict, Error>,
    stats: DecisionStats,
    wall_us: u64,
    phase_us: Option<[u64; 5]>,
) -> String {
    let (outcome, terminal) = match verdict {
        Ok(v) => (v.answer.label(), "ok"),
        Err(e) => e.labels(),
    };
    let positive = verdict.as_ref().map(Verdict::is_positive).unwrap_or(false);
    let mut line = format!(
        "verdict id={id} verb={verb} outcome={outcome} terminal={terminal} \
         positive={positive} evidence={} steps={} hits={} misses={} wall_us={wall_us}",
        evidence_summary(verdict),
        stats.chase_steps,
        stats.cache_hits,
        stats.cache_misses,
    );
    if let Some([queue, regularize, chase, cache, evidence]) = phase_us {
        let _ = write!(
            line,
            " queue_us={queue} regularize_us={regularize} chase_us={chase} \
             cache_us={cache} evidence_us={evidence}"
        );
    }
    if let Err(e) = verdict {
        let _ = write!(line, " msg={e}");
    }
    line
}

/// Renders the response line for a request that never became a
/// [`eqsql_service::Request`] — a parse failure, reported per line with
/// the connection kept open.
pub fn render_parse_error(id: u64, e: &Error) -> String {
    render_verdict(id, "unparsed", &Err(e.clone()), DecisionStats::default(), 0, None)
}

/// One response line, parsed. [`Client::recv`](crate::Client::recv)
/// yields these.
#[derive(Clone, Debug)]
pub enum Response {
    /// A decided (or dead) request.
    Verdict(WireVerdict),
    /// Reply to `ping`.
    Pong {
        /// The echoed request id.
        id: u64,
    },
    /// Reply to `stats`: one line of JSON.
    Stats {
        /// The echoed request id.
        id: u64,
        /// The JSON document (see [`crate::json::solver_stats_json`]).
        json: String,
    },
    /// Reply to `drain`; the server is now shutting down.
    Draining {
        /// The echoed request id.
        id: u64,
    },
    /// The server is at its connection limit; it closes after this line.
    Busy {
        /// The server's connection limit.
        max: usize,
    },
    /// A line this client version does not recognize — kept raw so old
    /// clients degrade readably against newer servers.
    Unknown(String),
}

/// A parsed `verdict` response line. Numeric fields the line did not
/// carry (or that a newer server renamed) parse as zero rather than
/// failing: the protocol grows by appending fields.
#[derive(Clone, Debug)]
pub struct WireVerdict {
    /// The request id this verdict answers.
    pub id: u64,
    /// The request's verb label (`equivalent`, `contains-set`, …, or
    /// `unparsed` for lines that failed to parse).
    pub verb: String,
    /// The answer/error label (`equivalent`, `not-implied`,
    /// `parse-error`, …).
    pub outcome: String,
    /// `ok`, `error`, `deadline`, `cancelled`, `shed`, or `panic`.
    pub terminal: String,
    /// Whether the answer is one of the positive family.
    pub positive: bool,
    /// The evidence summary token.
    pub evidence: String,
    /// Chase steps the decision spent.
    pub steps: u64,
    /// Cache hits attributed to the decision.
    pub hits: u64,
    /// Cache misses attributed to the decision.
    pub misses: u64,
    /// Wall microseconds from socket read to completion.
    pub wall_us: u64,
    /// Per-phase timings, when the server ran with `trace_timings`.
    pub phase_us: Option<[u64; 5]>,
    /// The error message, for non-`ok` terminals.
    pub msg: Option<String>,
}

/// Parses one response line. Unrecognized lines come back as
/// [`Response::Unknown`], never as an error — response parsing must not
/// be a way to wedge a client.
pub fn parse_response(line: &str) -> Response {
    let line = line.trim_end();
    if let Some(rest) = line.strip_prefix("pong ") {
        return Response::Pong { id: field_u64(rest, "id") };
    }
    if let Some(rest) = line.strip_prefix("stats ") {
        let json = rest.split_once(' ').map(|(_, j)| j.to_string()).unwrap_or_default();
        return Response::Stats { id: field_u64(rest, "id"), json };
    }
    if let Some(rest) = line.strip_prefix("draining ") {
        return Response::Draining { id: field_u64(rest, "id") };
    }
    if let Some(rest) = line.strip_prefix("busy ") {
        return Response::Busy { max: field_u64(rest, "max") as usize };
    }
    if let Some(rest) = line.strip_prefix("verdict ") {
        let (fields, msg) = match rest.split_once(" msg=") {
            Some((f, m)) => (f, Some(m.to_string())),
            None => (rest, None),
        };
        let get = |key: &str| field_str(fields, key).unwrap_or_default().to_string();
        let phase_us = field_str(fields, "queue_us").map(|_| {
            ["queue_us", "regularize_us", "chase_us", "cache_us", "evidence_us"]
                .map(|k| field_u64(fields, k))
        });
        return Response::Verdict(WireVerdict {
            id: field_u64(fields, "id"),
            verb: get("verb"),
            outcome: get("outcome"),
            terminal: get("terminal"),
            positive: field_str(fields, "positive") == Some("true"),
            evidence: get("evidence"),
            steps: field_u64(fields, "steps"),
            hits: field_u64(fields, "hits"),
            misses: field_u64(fields, "misses"),
            wall_us: field_u64(fields, "wall_us"),
            phase_us,
            msg,
        });
    }
    Response::Unknown(line.to_string())
}

fn field_str<'a>(fields: &'a str, key: &str) -> Option<&'a str> {
    fields
        .split_ascii_whitespace()
        .find_map(|tok| tok.split_once('=').filter(|(k, _)| *k == key).map(|(_, v)| v))
}

fn field_u64(fields: &str, key: &str) -> u64 {
    field_str(fields, key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_tags_split_off_raw_bytes() {
        assert_eq!(split_id(b"id=7 ping"), (Some(7), &b"ping"[..]));
        assert_eq!(split_id(b"id=42  pair: x"), (Some(42), &b"pair: x"[..]));
        assert_eq!(split_id(b"ping"), (None, &b"ping"[..]));
        // Malformed tags stay in the payload for the parser to reject.
        assert_eq!(split_id(b"id= pair"), (None, &b"id= pair"[..]));
        assert_eq!(split_id(b"id=7x pair"), (None, &b"id=7x pair"[..]));
        assert_eq!(
            split_id(b"id=99999999999999999999 x"),
            (None, &b"id=99999999999999999999 x"[..])
        );
        assert_eq!(control(b"drain"), Some(Control::Drain));
        assert_eq!(control(b"drain now"), None);
    }

    #[test]
    fn verdict_lines_round_trip() {
        let stats =
            DecisionStats { chase_steps: 12, cache_hits: 3, cache_misses: 1, ..Default::default() };
        let err: Result<Verdict, Error> = Err(Error::Cancelled { steps: 310 });
        let line = render_verdict(9, "equivalent", &err, stats, 5120, Some([1, 2, 3, 4, 5]));
        let Response::Verdict(v) = parse_response(&line) else { panic!("not a verdict: {line}") };
        assert_eq!(v.id, 9);
        assert_eq!(v.verb, "equivalent");
        assert_eq!(v.outcome, "cancelled");
        assert_eq!(v.terminal, "cancelled");
        assert!(!v.positive);
        assert_eq!(v.evidence, "none");
        assert_eq!((v.steps, v.hits, v.misses, v.wall_us), (12, 3, 1, 5120));
        assert_eq!(v.phase_us, Some([1, 2, 3, 4, 5]));
        assert_eq!(v.msg.as_deref(), Some("cancelled after 310 chase steps"));

        let plain = render_verdict(1, "minimal", &err, stats, 7, None);
        let Response::Verdict(v) = parse_response(&plain) else { panic!() };
        assert_eq!(v.phase_us, None);
        assert_eq!(v.wall_us, 7);
    }

    #[test]
    fn control_replies_round_trip() {
        assert!(matches!(parse_response("pong id=3"), Response::Pong { id: 3 }));
        assert!(matches!(parse_response("draining id=0"), Response::Draining { id: 0 }));
        assert!(matches!(parse_response("busy max=64"), Response::Busy { max: 64 }));
        match parse_response("stats id=5 {\"requests\":1}") {
            Response::Stats { id: 5, json } => assert_eq!(json, "{\"requests\":1}"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(parse_response("??? what"), Response::Unknown(_)));
    }
}
