//! `netdrive` — drive a running `eqsql-serve --listen` server with the
//! request lines of a request file, over one or more concurrent clients.
//!
//! ```text
//! netdrive [--clients N] [--stats] [--drain] [--verbose] ADDR FILE
//! ```
//!
//! Reads FILE (the `eqsql_service::request` format), keeps only its verb
//! lines (headers like `sigma:` configure a server at startup, not over
//! the wire), splits them round-robin across N concurrent connections,
//! pipelines each split, and aggregates the verdicts into one summary:
//!
//! ```text
//! split: 7 positive, 6 other, 0 errors (13 verdicts over 2 client(s))
//! ```
//!
//! `--stats` then fetches the `stats` JSON and machine-validates it
//! (printing `stats: ok` or failing), and `--drain` asks the server to
//! shut down gracefully. Exit code is nonzero on connection failures,
//! response-count mismatches, or invalid stats JSON — this is the CI
//! smoke driver for the net path.

use eqsql_net::{validate_json, Client};
use std::process::ExitCode;

const USAGE: &str = "usage: netdrive [--clients N] [--stats] [--drain] [--verbose] ADDR FILE";

struct Args {
    addr: String,
    file: String,
    clients: usize,
    stats: bool,
    drain: bool,
    verbose: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut addr = None;
    let mut file = None;
    let mut clients = 1usize;
    let (mut stats, mut drain, mut verbose) = (false, false, false);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clients" => {
                clients = it
                    .next()
                    .ok_or("--clients wants a number")?
                    .parse::<usize>()
                    .map_err(|_| "--clients wants a number".to_string())?
                    .max(1);
            }
            "--stats" => stats = true,
            "--drain" => drain = true,
            "--verbose" => verbose = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if addr.is_none() => addr = Some(other.to_string()),
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    let addr = addr.ok_or("missing server ADDR")?;
    let file = file.ok_or("missing request FILE")?;
    Ok(Some(Args { addr, file, clients, stats, drain, verbose }))
}

/// The verb lines of a request file — what is legal to send over the
/// wire. Headers, comments and blanks are dropped.
fn verb_lines(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter(|l| {
            !matches!(
                l.split(':').next().map(str::trim),
                Some("sigma" | "set_valued" | "max_steps" | "max_atoms")
            )
        })
        .map(str::to_string)
        .collect()
}

/// One client's work: pipeline every line, then collect exactly as many
/// verdicts. Returns `(positive, other, errors)` counts.
fn drive(addr: &str, lines: &[String], verbose: bool) -> Result<(usize, usize, usize), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut sent = Vec::with_capacity(lines.len());
    for line in lines {
        sent.push(client.send(line).map_err(|e| format!("send: {e}"))?);
    }
    client.finish_sending().ok();
    let (mut positive, mut other, mut errors) = (0, 0, 0);
    for _ in 0..lines.len() {
        let v = match client.recv_verdict() {
            Ok(Some(v)) => v,
            Ok(None) => return Err("server closed before all verdicts arrived".into()),
            Err(e) => return Err(format!("recv: {e}")),
        };
        if verbose {
            println!(
                "verdict id={} verb={} outcome={} terminal={}",
                v.id, v.verb, v.outcome, v.terminal
            );
        }
        if !sent.contains(&v.id) {
            return Err(format!("verdict for unknown id {}", v.id));
        }
        if v.terminal != "ok" {
            errors += 1;
        } else if v.positive {
            positive += 1;
        } else {
            other += 1;
        }
    }
    Ok((positive, other, errors))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("netdrive: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let lines = verb_lines(&text);
    if lines.is_empty() {
        eprintln!("netdrive: {} has no request lines", args.file);
        return ExitCode::FAILURE;
    }
    // Round-robin split, one slice per client, driven concurrently.
    let splits: Vec<Vec<String>> = (0..args.clients)
        .map(|k| lines.iter().skip(k).step_by(args.clients).cloned().collect())
        .collect();
    let results: Vec<Result<(usize, usize, usize), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = splits
            .iter()
            .map(|split| scope.spawn(|| drive(&args.addr, split, args.verbose)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread panicked")).collect()
    });
    let (mut positive, mut other, mut errors) = (0, 0, 0);
    for r in results {
        match r {
            Ok((p, o, e)) => {
                positive += p;
                other += o;
                errors += e;
            }
            Err(msg) => {
                eprintln!("netdrive: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "split: {positive} positive, {other} other, {errors} errors \
         ({} verdicts over {} client(s))",
        positive + other + errors,
        args.clients
    );
    if args.stats || args.drain {
        let mut control = match Client::connect(&args.addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("netdrive: control connect: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.stats {
            match control.stats() {
                Ok(Some(json)) => match validate_json(&json) {
                    Ok(()) => println!("stats: ok ({} bytes)", json.len()),
                    Err(e) => {
                        eprintln!("netdrive: stats JSON invalid: {e}\n{json}");
                        return ExitCode::FAILURE;
                    }
                },
                Ok(None) => {
                    eprintln!("netdrive: server closed before answering stats");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("netdrive: stats: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if args.drain {
            match control.drain() {
                Ok(()) => println!("drained"),
                Err(e) => {
                    eprintln!("netdrive: drain: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::verb_lines;

    #[test]
    fn header_lines_are_not_sent() {
        let lines = verb_lines(
            "# c\nsigma: a(X) -> b(X).\nset_valued: b\nmax_steps: 9\n\n\
             pair: set | q(X) :- a(X) | q(X) :- a(X), b(X)\nimplies: a(X) -> b(X).\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("pair:"));
    }

    #[test]
    fn drain_before_verdicts_is_an_error_path_not_a_hang() {
        // Pure parse check: the Response enum distinguishes the shapes
        // drive() relies on.
        use eqsql_net::Response;
        assert!(matches!(
            eqsql_net::proto::parse_response("draining id=1"),
            Response::Draining { .. }
        ));
    }
}
