//! `eqsql-serve` — drive a [`Solver`] from a request file, or put it
//! behind a TCP socket.
//!
//! ```text
//! eqsql-serve [--threads N] [--repeat K] [--cache-capacity C]
//!             [--cache-dir DIR] [--cache-read-only] [--snapshot-every N]
//!             [--deadline-ms MS] [--shed N] [--shed-policy reject-new|cancel-oldest]
//!             [--metrics] [--trace FILE] [--progress MS]
//!             [--strict] [--quiet] [--listen ADDR] FILE
//! ```
//!
//! Decides every request line of FILE (format: `eqsql_service::request` —
//! the full verb family: `pair`/`equivalent`, `contains`, `minimal`,
//! `cnb`, `implies`, with per-request semantics/budget overrides) over
//! the file's shared Σ and prints one verdict line per request plus batch
//! statistics. `--repeat K` re-runs the same batch K times against the
//! solver's (by then warm) cache — the simplest load test: run 1 pays for
//! the chases, runs 2..K measure the serving path.
//!
//! `--listen ADDR` switches to server mode (`eqsql_net`): FILE still
//! supplies Σ, the schema, the set-valued flags and default budgets, but
//! its request lines are ignored — requests arrive over the socket in
//! the same verb grammar, one per line (see the `eqsql_net` crate docs
//! for the wire protocol). The ops and observability flags wire through
//! unchanged: `--deadline-ms`/`--shed*` shape every connection's batch
//! envelope, `--cache-dir` persists the shared cache, `--metrics`
//! enables instrumentation, and `--trace` additionally puts per-phase
//! timings on every verdict line. The bound address is printed as
//! `listening on ADDR` (bind to port `0` for an ephemeral port); the
//! process runs until a client sends `drain`, then prints the same
//! `cache:`/`persist:`/`metric:` stat lines as file mode.
//!
//! `--cache-dir DIR` persists the chase cache at DIR (append-only log +
//! compacted snapshots; see `eqsql_service::cache::persist`): a restarted
//! server over the same DIR answers previously decided chases from disk,
//! reported in the `persist:` stats line. `--snapshot-every N` sets the
//! compaction cadence (0 = never), `--cache-read-only` serves disk hits
//! without writing.
//!
//! Ops knobs map onto [`eqsql_service::BatchOptions`]: `--deadline-ms MS`
//! gives every request a wall-clock deadline (`0` = already expired —
//! deterministic timeout drills), `--shed N` bounds the admission queue
//! at N requests (shed policy per `--shed-policy`, default `reject-new`).
//! The exit code is SUCCESS even when verdicts are errors — an error
//! verdict is a decided outcome, reported in the `batch:` summary line —
//! unless `--strict` is given, which exits nonzero if any verdict is an
//! error.
//!
//! Observability (`eqsql_obs`, off by default so the serving path stays
//! step-identical): `--metrics` turns instrumentation on and prints
//! `metric:`-prefixed summary lines at end of run (latency histogram
//! quantiles, cumulative per-phase timings, core counters); `--trace FILE`
//! additionally writes one structured `event=request …` key=value line per
//! decided request to FILE (see `eqsql_service`'s "Observability" docs for
//! the schema); `--progress MS` prints a liveness line to stderr every MS
//! milliseconds while the batch loop runs.

use eqsql_net::{Server, ServerConfig};
use eqsql_service::{
    parse_request_file, AdmissionConfig, Answer, BatchOptions, CacheConfig, ChaseCache, Error,
    PersistConfig, Request, ShedPolicy, Solver, TraceSink, Verdict, WriteSink,
};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: eqsql-serve [--threads N] [--repeat K] [--cache-capacity C] \
                     [--cache-dir DIR] [--cache-read-only] [--snapshot-every N] \
                     [--deadline-ms MS] [--shed N] [--shed-policy reject-new|cancel-oldest] \
                     [--metrics] [--trace FILE] [--progress MS] \
                     [--strict] [--quiet] [--listen ADDR] FILE";

struct Args {
    file: String,
    listen: Option<String>,
    threads: usize,
    repeat: usize,
    cache_capacity: usize,
    cache_dir: Option<String>,
    cache_read_only: bool,
    snapshot_every: Option<usize>,
    deadline_ms: Option<u64>,
    shed: Option<usize>,
    shed_policy: ShedPolicy,
    metrics: bool,
    trace: Option<String>,
    progress_ms: Option<u64>,
    strict: bool,
    quiet: bool,
}

enum ArgsOutcome {
    Run(Args),
    /// `--help`: print usage to stdout, exit success.
    Help,
}

fn parse_args() -> Result<ArgsOutcome, String> {
    let mut args = Args {
        file: String::new(),
        listen: None,
        threads: 1,
        repeat: 1,
        cache_capacity: CacheConfig::default().capacity,
        cache_dir: None,
        cache_read_only: false,
        snapshot_every: None,
        deadline_ms: None,
        shed: None,
        shed_policy: ShedPolicy::RejectNew,
        metrics: false,
        trace: None,
        progress_ms: None,
        strict: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut numeric = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} wants a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{name} wants a number"))
        };
        match a.as_str() {
            "--threads" => args.threads = numeric("--threads")?.max(1),
            "--repeat" => args.repeat = numeric("--repeat")?.max(1),
            "--cache-capacity" => args.cache_capacity = numeric("--cache-capacity")?.max(1),
            "--cache-dir" => {
                args.cache_dir = Some(it.next().ok_or("--cache-dir wants a directory")?)
            }
            "--cache-read-only" => args.cache_read_only = true,
            "--snapshot-every" => args.snapshot_every = Some(numeric("--snapshot-every")?),
            "--deadline-ms" => args.deadline_ms = Some(numeric("--deadline-ms")? as u64),
            "--shed" => args.shed = Some(numeric("--shed")?.max(1)),
            "--shed-policy" => {
                let v = it.next().ok_or("--shed-policy wants a value")?;
                args.shed_policy = match v.as_str() {
                    "reject-new" => ShedPolicy::RejectNew,
                    "cancel-oldest" => ShedPolicy::CancelOldest,
                    other => {
                        return Err(format!(
                            "unknown shed policy {other:?} (want reject-new|cancel-oldest)"
                        ))
                    }
                };
            }
            "--listen" => args.listen = Some(it.next().ok_or("--listen wants an address")?),
            "--metrics" => args.metrics = true,
            "--trace" => args.trace = Some(it.next().ok_or("--trace wants a file")?),
            "--progress" => args.progress_ms = Some(numeric("--progress")?.max(1) as u64),
            "--strict" => args.strict = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Ok(ArgsOutcome::Help),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if args.file.is_empty() => args.file = other.to_string(),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if args.file.is_empty() {
        return Err("missing request FILE (see --help)".to_string());
    }
    Ok(ArgsOutcome::Run(args))
}

/// One human-readable line per request/verdict pair.
fn render(req: &Request, verdict: &Result<Verdict, Error>) -> String {
    let subject = match req {
        Request::Equivalent { q1, q2, opts } => {
            let sem = opts.sem.map(|s| s.to_string()).unwrap_or_else(|| "S".into());
            format!("[{sem}] {q1}  ≡?  {q2}")
        }
        Request::Contained { q1, q2, .. } => format!("[S] {q1}  ⊑?  {q2}"),
        Request::BagContained { q1, q2, .. } => format!("[B] {q1}  ⊑?  {q2}"),
        Request::Minimal { q, .. } => format!("minimal? {q}"),
        Request::Reformulate { q, .. } => format!("cnb {q}"),
        Request::Implies { dep, .. } => format!("Σ ⊨? {dep}"),
        Request::ChaseInstance { .. } => "chase-instance".to_string(),
    };
    let outcome = match verdict {
        Err(e) => format!("error ({e})"),
        Ok(v) => match &v.answer {
            Answer::Equivalent { .. } => "equivalent".to_string(),
            Answer::NotEquivalent { counterexample } => format!(
                "not-equivalent{}",
                if counterexample.is_some() { " (witness found)" } else { "" }
            ),
            Answer::Contained { .. } => "contained".to_string(),
            Answer::NotContained { .. } => "not-contained".to_string(),
            Answer::BagContained { .. } => "contained".to_string(),
            Answer::BagNotContained { .. } => "not-contained".to_string(),
            Answer::BagContainmentOpen => "open".to_string(),
            Answer::Minimal => "minimal".to_string(),
            Answer::NotMinimal { witness } => {
                format!("not-minimal (reduces to {})", witness.reduced)
            }
            Answer::Reformulated { reformulations, candidates_tested, .. } => format!(
                "{} reformulation(s) from {} candidate(s): {}",
                reformulations.len(),
                candidates_tested,
                reformulations.iter().map(|q| q.to_string()).collect::<Vec<_>>().join("  ;  "),
            ),
            Answer::Implied { vacuous: true, .. } => "implied (vacuously)".to_string(),
            Answer::Implied { .. } => "implied".to_string(),
            Answer::NotImplied { .. } => "not-implied".to_string(),
            Answer::ChasedInstance { steps, .. } => format!("repaired in {steps} step(s)"),
        },
    };
    format!("{subject}  →  {outcome}")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(ArgsOutcome::Run(a)) => a,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("eqsql-serve: cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let request = match parse_request_file(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("eqsql-serve: {}: {}", args.file, Error::from(e));
            return ExitCode::FAILURE;
        }
    };
    let persist = args.cache_dir.as_ref().map(|dir| {
        let mut p = PersistConfig::at(dir);
        p.read_only = args.cache_read_only;
        if let Some(every) = args.snapshot_every {
            p.snapshot_every = every;
        }
        p
    });
    let cache = match ChaseCache::open(CacheConfig {
        capacity: args.cache_capacity,
        persist,
        ..CacheConfig::default()
    }) {
        Ok(c) => Arc::new(c),
        Err(e) => {
            let dir = args.cache_dir.as_deref().unwrap_or("");
            eprintln!("eqsql-serve: cannot open cache dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Observability is opt-in: only these flags flip the global gate, so a
    // plain run keeps the zero-cost (step-identical) disabled fast path.
    if args.metrics || args.trace.is_some() {
        eqsql_obs::set_enabled(true);
    }
    let trace_sink: Option<Arc<dyn TraceSink>> = match &args.trace {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(Arc::new(WriteSink::new(f))),
            Err(e) => {
                eprintln!("eqsql-serve: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut builder = Solver::builder(request.sigma, request.schema)
        .chase_config(request.config)
        .cache(Arc::clone(&cache))
        .threads(args.threads);
    if let Some(sink) = trace_sink {
        builder = builder.trace_sink(sink);
    }
    let solver = builder.build();
    let batch_opts = BatchOptions {
        deadline_ms: args.deadline_ms,
        admission: args.shed.map(|capacity| AdmissionConfig { capacity, policy: args.shed_policy }),
        ..BatchOptions::default()
    };
    if let Some(addr) = &args.listen {
        return run_listen(&args, solver, batch_opts, addr);
    }

    let start = Instant::now();
    let mut last = None;
    // The progress reporter (if any) lives only as long as the batch loop:
    // a scoped thread borrowing the solver, parked between ticks and
    // unparked for a prompt exit once the loop is done.
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let progress = args.progress_ms.map(|ms| {
            let (solver, done) = (&solver, &done);
            scope.spawn(move || {
                let period = Duration::from_millis(ms);
                loop {
                    std::thread::park_timeout(period);
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let s = solver.stats();
                    eprintln!(
                        "progress: {} request(s) decided, {} cache hit(s), \
                         {} miss(es), {} shed, {:.1}s elapsed",
                        s.requests,
                        s.cache.hits,
                        s.cache.misses,
                        s.shed,
                        start.elapsed().as_secs_f64()
                    );
                }
            })
        });
        for run in 0..args.repeat {
            let report = solver.decide_all_with(&request.requests, &batch_opts);
            if run == 0 && !args.quiet {
                for (req, verdict) in request.requests.iter().zip(report.verdicts.iter()) {
                    println!("{}", render(req, verdict));
                }
            }
            last = Some(report);
        }
        done.store(true, Ordering::Release);
        if let Some(handle) = progress {
            handle.thread().unpark();
        }
    });
    let total = start.elapsed();
    let report = last.expect("repeat >= 1");
    let positive = report
        .verdicts
        .iter()
        .filter(|v| v.as_ref().map(Verdict::is_positive).unwrap_or(false))
        .count();
    let errors = report.verdicts.iter().filter(|v| v.is_err()).count();
    let other = report.verdicts.len() - positive - errors;
    println!(
        "batch: {} requests ({} positive, {} other, {} errors) on {} thread(s)",
        report.verdicts.len(),
        positive,
        other,
        errors,
        report.threads
    );
    print_core_stats(&solver, &args);
    println!(
        "timing: last run {:?}, {} run(s) total {:?} ({:.1} requests/s overall)",
        report.stats.wall,
        args.repeat,
        total,
        (report.verdicts.len() * args.repeat) as f64 / total.as_secs_f64().max(f64::EPSILON)
    );
    print_metric_stats(&solver, &args);
    if args.strict && errors > 0 {
        eprintln!("eqsql-serve: --strict: {errors} error verdict(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `cache:`/`persist:`/`backpressure:` stat lines, shared between
/// file and listen mode.
fn print_core_stats(solver: &Solver, args: &Args) {
    let s = solver.stats();
    // Anything new on this line goes *after* "misses" — bench_snapshot.sh
    // parses the `cache: N hits, M misses` prefix with a suffix-tolerant sed.
    let (occ_min, occ_max) = (
        s.cache.shard_entries.iter().min().copied().unwrap_or(0),
        s.cache.shard_entries.iter().max().copied().unwrap_or(0),
    );
    println!(
        "cache: {} hits, {} misses, {} evictions, {} entries resident \
         ({} requests, {} batches); {} disk hit(s), {} io error(s); \
         shard occupancy min {} max {}",
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.entries,
        s.requests,
        s.batches,
        s.cache.persist.disk_hits,
        s.cache.persist.io_errors,
        occ_min,
        occ_max
    );
    if args.cache_dir.is_some() {
        let p = s.cache.persist;
        println!(
            "persist: {} loaded, {} recovered, {} discarded, {} snapshots, \
             {} appended, {} disk hits{}",
            p.loaded,
            p.recovered,
            p.discarded,
            p.snapshots,
            p.appended,
            p.disk_hits,
            if p.io_errors > 0 { format!(", {} io errors", p.io_errors) } else { String::new() }
        );
    }
    if s.shed > 0 || s.retries > 0 || s.panics > 0 {
        println!("backpressure: {} shed, {} retries, {} panics", s.shed, s.retries, s.panics);
    }
}

/// The `metric:` lines (`--metrics` only), shared between modes.
fn print_metric_stats(solver: &Solver, args: &Args) {
    if !args.metrics {
        return;
    }
    let s = solver.stats();
    let p = s.phase;
    println!("metric: latency {}", s.latency);
    println!(
        "metric: phase queue_us={} regularize_us={} chase_us={} cache_us={} evidence_us={}",
        p.queue_us, p.regularize_us, p.chase_us, p.cache_us, p.evidence_us
    );
    println!(
        "metric: counters requests={} batches={} shed={} retries={} panics={} \
         cache_hits={} cache_misses={} disk_hits={}",
        s.requests,
        s.batches,
        s.shed,
        s.retries,
        s.panics,
        s.cache.hits,
        s.cache.misses,
        s.cache.persist.disk_hits
    );
}

/// `--listen` mode: put the solver behind a TCP socket and run until a
/// client drains it.
fn run_listen(args: &Args, solver: Solver, batch_opts: BatchOptions, addr: &str) -> ExitCode {
    let solver = Arc::new(solver);
    let config = ServerConfig {
        batch: batch_opts,
        trace_timings: args.trace.is_some(),
        ..ServerConfig::default()
    };
    let server = match Server::start(Arc::clone(&solver), addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eqsql-serve: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Printed (and flushed) even under --quiet: with `--listen :0` this
    // line is how a caller learns the actual port.
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let start = Instant::now();
    // Same liveness reporting as file mode, against the shared solver.
    let done = AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let progress = args.progress_ms.map(|ms| {
            let (solver, done) = (&solver, &done);
            scope.spawn(move || {
                let period = Duration::from_millis(ms);
                loop {
                    std::thread::park_timeout(period);
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let s = solver.stats();
                    eprintln!(
                        "progress: {} request(s) decided, {} cache hit(s), \
                         {} miss(es), {} shed, {:.1}s elapsed",
                        s.requests,
                        s.cache.hits,
                        s.cache.misses,
                        s.shed,
                        start.elapsed().as_secs_f64()
                    );
                }
            })
        });
        let report = server.join();
        done.store(true, Ordering::Release);
        if let Some(handle) = progress {
            handle.thread().unpark();
        }
        report
    });
    println!(
        "net: {} connection(s) accepted, {} rejected, {} request(s) served in {:.1}s",
        report.connections,
        report.rejected,
        report.served,
        start.elapsed().as_secs_f64()
    );
    print_core_stats(&solver, args);
    print_metric_stats(&solver, args);
    ExitCode::SUCCESS
}
