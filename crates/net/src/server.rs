//! The server side: a bounded accept loop over blocking `std::net`
//! sockets, one reader + one dispatcher thread per connection, verdicts
//! streamed as they complete. See the crate docs for the wire protocol.
//!
//! Threading model — no async runtime, just the workspace's scoped-thread
//! idiom:
//!
//! * **accept thread** (one per server) — a nonblocking `accept` polled
//!   on a short tick so it can observe [`Server::drain`] promptly;
//!   enforces the connection limit (over-limit sockets get one
//!   `busy max=N` line and are closed without a thread).
//! * **reader thread** (one per connection) — reads lines with a read
//!   timeout as the poll tick, answers control verbs (`ping`, `stats`,
//!   `drain`) immediately, answers malformed lines with per-line
//!   parse-error verdicts, and queues decoded requests (with their
//!   socket-read instant) for the dispatcher.
//! * **dispatcher** (the connection's own thread) — drains whatever the
//!   reader queued into a window and feeds it through
//!   [`Solver::decide_all_streaming`], so pipelined requests share a
//!   batch: the admission queue, deadlines, retry and cancellation of
//!   the configured [`BatchOptions`] apply unchanged, and each verdict
//!   line is written the moment that request completes.
//!
//! Draining sets one flag and cancels one [`Cancel`] token; every loop
//! above watches one or the other, so shutdown needs no channels: stop
//! accepting, cancel in-flight (their verdicts stream back with
//! `terminal=cancelled`), flush, join, one final stats log line.

use crate::json::solver_stats_json;
use crate::proto::{control, render_parse_error, render_verdict, split_id, Control};
use eqsql_service::{BatchOptions, Cancel, Completion, Error, Request, Solver, MAX_LINE_BYTES};
use std::collections::VecDeque;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the draining flag.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Everything tunable about a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent-connection limit; arrivals past it get `busy max=N`.
    pub max_connections: usize,
    /// Per-connection read timeout. Doubles as the reader thread's poll
    /// tick for the draining flag, so keep it short.
    pub read_timeout: Duration,
    /// Per-connection write timeout: a client that stops reading its
    /// responses is disconnected rather than wedging a worker.
    pub write_timeout: Duration,
    /// The ops envelope every dispatch window runs under — deadlines,
    /// admission/shedding and retry work over the network exactly as in
    /// file mode. The server installs its own drain token as the batch
    /// cancellation handle, so leave [`BatchOptions::cancel`] unset.
    pub batch: BatchOptions,
    /// Append per-phase timings (`queue_us=` … `evidence_us=`) to every
    /// verdict line. Only meaningful while observability is on
    /// ([`eqsql_obs::set_enabled`] or a trace sink), which is also what
    /// makes the Queue phase start at the socket read.
    pub trace_timings: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            batch: BatchOptions::default(),
            trace_timings: false,
        }
    }
}

/// End-of-life accounting, returned by [`Server::join`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerReport {
    /// Connections accepted (excluding `busy` rejections).
    pub connections: u64,
    /// Connections turned away at the limit.
    pub rejected: u64,
    /// Request lines answered with a verdict line (including parse
    /// errors and cancelled in-flight requests).
    pub served: u64,
}

struct Shared {
    solver: Arc<Solver>,
    config: ServerConfig,
    /// The server-wide cancellation token: handed to every dispatch
    /// window as [`BatchOptions::cancel`], set once on drain.
    drain: Cancel,
    draining: AtomicBool,
    live: AtomicUsize,
    served: AtomicU64,
}

impl Shared {
    fn drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.drain.cancel();
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

/// A running server. Dropping the handle drains and joins it; a clean
/// shutdown is [`Server::drain`] (or the wire verb `drain`) followed by
/// [`Server::join`].
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<ServerReport>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop. The solver is shared — its cache, stats
    /// and admission counters are one pool across all connections and
    /// any in-process callers holding the same `Arc`.
    pub fn start(
        solver: Arc<Solver>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            solver,
            config,
            drain: Cancel::new(),
            draining: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            served: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server { local_addr, shared, accept: Some(accept) })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates graceful shutdown (the SIGTERM-equivalent): stop
    /// accepting, cancel in-flight decisions via the shared [`Cancel`]
    /// token, flush every connection's responses. Idempotent; returns
    /// immediately — [`Server::join`] waits for completion.
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Waits for the accept loop and every connection to finish. Only
    /// returns after a drain (local or over the wire) or a listener
    /// failure; a healthy server blocks here indefinitely.
    pub fn join(mut self) -> ServerReport {
        self.join_inner()
    }

    fn join_inner(&mut self) -> ServerReport {
        match self.accept.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => ServerReport::default(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shared.drain();
            let _ = self.join_inner();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> ServerReport {
    let mut report = ServerReport::default();
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.live.load(Ordering::Acquire) >= shared.config.max_connections {
                    report.rejected += 1;
                    reject_busy(stream, &shared.config);
                    continue;
                }
                report.connections += 1;
                shared.live.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(&shared);
                conns.push(std::thread::spawn(move || {
                    connection(stream, &shared);
                    shared.live.fetch_sub(1, Ordering::AcqRel);
                }));
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                std::thread::sleep(ACCEPT_TICK);
            }
            // Transient accept errors (ECONNABORTED and friends): the
            // listener is still good, keep serving.
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
    drop(listener);
    for c in conns {
        let _ = c.join();
    }
    report.served = shared.served.load(Ordering::Acquire);
    // The final stats line of a graceful shutdown, one parseable JSON
    // document like the `stats` verb's.
    eprintln!("stats: {}", solver_stats_json(&shared.solver.stats()));
    report
}

/// Over-limit connections get one line and a close; no thread is spent.
fn reject_busy(stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut stream = stream;
    let _ = writeln!(stream, "busy max={}", config.max_connections);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// What the reader hands the dispatcher: the response id, the decoded
/// request, and the instant its line was read (the true start of its
/// Queue phase).
type Queued = (u64, Request, Instant);

struct ConnState {
    queue: Mutex<VecDeque<Queued>>,
    cvar: Condvar,
    /// The reader is done (EOF, error, or drain): dispatch what's queued
    /// and finish.
    done: AtomicBool,
}

/// Writes one response line, flushing so it streams. Returns `false`
/// when the client is gone (the caller keeps deciding — verdicts for a
/// dead client are just dropped by later writes failing too).
fn send(writer: &Mutex<BufWriter<TcpStream>>, line: &str) -> bool {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    writeln!(w, "{line}").and_then(|_| w.flush()).is_ok()
}

fn connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Mutex::new(BufWriter::new(write_half));
    let state = ConnState {
        queue: Mutex::new(VecDeque::new()),
        cvar: Condvar::new(),
        done: AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        scope.spawn(|| {
            reader(stream, shared, &state, &writer);
            state.done.store(true, Ordering::Release);
            state.cvar.notify_all();
        });
        dispatcher(shared, &state, &writer);
    });
    // Both halves are finished; a last flush covers a dispatcher write
    // raced by reader shutdown, then the socket closes on drop.
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.flush();
    let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
}

/// The read half: byte-accurate line framing over a timeout-polled
/// blocking read. Partial lines persist in `pending` across reads; an
/// oversized line is answered immediately and then discarded up to its
/// terminating newline, so one hostile line never kills the connection
/// or unboundedly grows the buffer.
fn reader(
    mut stream: TcpStream,
    shared: &Shared,
    state: &ConnState,
    writer: &Mutex<BufWriter<TcpStream>>,
) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut discarding = false;
    let mut seq: u64 = 0;
    loop {
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = pending.drain(..=pos).collect();
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if std::mem::take(&mut discarding) {
                continue; // the tail of an already-answered oversized line
            }
            if handle_line(&line, shared, state, writer, &mut seq) == Flow::Drain {
                return;
            }
        }
        if pending.len() > MAX_LINE_BYTES {
            let (id, _) = split_id(&pending);
            seq += 1;
            let e = Error::parse(format!("request line exceeds the {MAX_LINE_BYTES}-byte limit"));
            send(writer, &render_parse_error(id.unwrap_or(seq), &e));
            pending.clear();
            discarding = true;
        }
        if shared.draining() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

#[derive(PartialEq)]
enum Flow {
    Continue,
    Drain,
}

fn handle_line(
    line: &[u8],
    shared: &Shared,
    state: &ConnState,
    writer: &Mutex<BufWriter<TcpStream>>,
    seq: &mut u64,
) -> Flow {
    let line = trim_ascii(line);
    if line.is_empty() || line.first() == Some(&b'#') {
        return Flow::Continue;
    }
    *seq += 1;
    let (tag, payload) = split_id(line);
    let id = tag.unwrap_or(*seq);
    if let Some(ctrl) = control(payload) {
        match ctrl {
            Control::Ping => {
                send(writer, &format!("pong id={id}"));
            }
            Control::Stats => {
                let json = solver_stats_json(&shared.solver.stats());
                send(writer, &format!("stats id={id} {json}"));
            }
            Control::Drain => {
                send(writer, &format!("draining id={id}"));
                shared.drain();
                return Flow::Drain;
            }
        }
        return Flow::Continue;
    }
    match eqsql_service::parse_request_line_bytes(payload, shared.solver.schema()) {
        Ok(req) => {
            state.queue.lock().unwrap_or_else(|e| e.into_inner()).push_back((
                id,
                req,
                Instant::now(),
            ));
            state.cvar.notify_all();
        }
        Err(e) => {
            send(writer, &render_parse_error(id, &Error::from(e)));
            shared.served.fetch_add(1, Ordering::AcqRel);
        }
    }
    Flow::Continue
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = b {
        if first.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = b {
        if last.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

/// The decide half: repeatedly drains whatever the reader queued into a
/// window and runs it as one streaming batch. Requests queued *during* a
/// window form the next window — pipelining without per-request batch
/// overhead. Exits once the reader is done and the queue is empty; a
/// drain mid-window is observed by the batch's cancellation token, so
/// in-flight requests still produce (cancelled) verdict lines.
fn dispatcher(shared: &Shared, state: &ConnState, writer: &Mutex<BufWriter<TcpStream>>) {
    loop {
        let window: Vec<Queued> = {
            let mut q = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !q.is_empty() {
                    break q.drain(..).collect();
                }
                if state.done.load(Ordering::Acquire) {
                    return;
                }
                q = state
                    .cvar
                    .wait_timeout(q, shared.config.read_timeout)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        let mut ids = Vec::with_capacity(window.len());
        let mut requests = Vec::with_capacity(window.len());
        let mut offsets = Vec::with_capacity(window.len());
        for (id, req, read_at) in window {
            ids.push(id);
            offsets.push(read_at.elapsed().as_micros() as u64);
            requests.push(req);
        }
        let mut opts = shared.config.batch.clone();
        opts.cancel = Some(shared.drain.clone());
        opts.queue_offsets_us = Some(offsets);
        let on_complete = |c: Completion<'_>| {
            let line = render_verdict(
                ids[c.index],
                requests[c.index].label(),
                c.verdict,
                c.stats,
                c.wall_us,
                if shared.config.trace_timings { c.phase_us } else { None },
            );
            send(writer, &line);
            shared.served.fetch_add(1, Ordering::AcqRel);
        };
        shared.solver.decide_all_streaming(&requests, &opts, &on_complete);
    }
}
