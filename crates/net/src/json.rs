//! Dependency-free JSON for the `stats` control verb: a hand-rolled
//! encoder for [`SolverStats`] (every field is an unsigned integer or an
//! array of them, so encoding is string assembly, not a framework) and a
//! strict validator the tests — and `netdrive --stats` — check the
//! output with, so "well-formed stats JSON" is asserted by machine, not
//! by eyeball.

use eqsql_service::SolverStats;

/// Encodes a [`SolverStats`] snapshot as one line of JSON. Keys mirror
/// the struct fields (`requests`, `batches`, `shed`, `retries`,
/// `panics`, `latency{count,mean,p50,p90,p99,max}`,
/// `phase{queue_us,…,evidence_us}`, `cache{hits,misses,evictions,
/// entries,shard_entries,persist{loaded,…,io_errors}}`); every value is
/// a non-negative integer, so the document needs no string escaping.
pub fn solver_stats_json(s: &SolverStats) -> String {
    let l = &s.latency;
    let p = &s.phase;
    let c = &s.cache;
    let pe = &c.persist;
    let shards = c.shard_entries.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(",");
    format!(
        "{{\"requests\":{},\"batches\":{},\"shed\":{},\"retries\":{},\"panics\":{},\
         \"latency\":{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}},\
         \"phase\":{{\"queue_us\":{},\"regularize_us\":{},\"chase_us\":{},\"cache_us\":{},\"evidence_us\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\
         \"shard_entries\":[{}],\
         \"persist\":{{\"loaded\":{},\"recovered\":{},\"discarded\":{},\"snapshots\":{},\
         \"appended\":{},\"disk_hits\":{},\"io_errors\":{}}}}}}}",
        s.requests, s.batches, s.shed, s.retries, s.panics,
        l.count, l.mean, l.p50, l.p90, l.p99, l.max,
        p.queue_us, p.regularize_us, p.chase_us, p.cache_us, p.evidence_us,
        c.hits, c.misses, c.evictions, c.entries, shards,
        pe.loaded, pe.recovered, pe.discarded, pe.snapshots,
        pe.appended, pe.disk_hits, pe.io_errors,
    )
}

/// Validates that `text` is exactly one JSON value (RFC 8259 grammar:
/// objects, arrays, strings with escapes, numbers, literals) with
/// nothing but whitespace around it. Returns the byte offset and a
/// description on the first violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("byte {pos}: trailing garbage after the JSON value"));
    }
    Ok(())
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("byte {pos}: {what}"))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(_) => literal(b, pos),
        None => fail(*pos, "expected a value, found end of input"),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected a string key");
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':' after key");
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}' in object"),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']' in array"),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    loop {
        match b.get(*pos) {
            None => return fail(*pos, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return fail(*pos, "bad \\u escape");
                            }
                            *pos += 1;
                        }
                    }
                    _ => return fail(*pos, "bad escape"),
                }
            }
            Some(c) if *c < 0x20 => return fail(*pos, "raw control character in string"),
            Some(_) => *pos += 1,
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let int_len = *pos - int_start;
    if int_len == 0 {
        return fail(*pos, "number with no digits");
    }
    if int_len > 1 && b[int_start] == b'0' {
        return fail(int_start, "number with a leading zero");
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            return fail(*pos, "fraction with no digits");
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == start {
            return fail(*pos, "exponent with no digits");
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize) -> Result<(), String> {
    for lit in ["true", "false", "null"] {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            return Ok(());
        }
    }
    fail(*pos, "expected a JSON value")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_encode_as_valid_json() {
        let mut s = SolverStats::default();
        s.requests = 13;
        s.cache.shard_entries = vec![0, 3, 1];
        s.latency.p99 = 4096;
        let json = solver_stats_json(&s);
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"requests\":13"));
        assert!(json.contains("\"shard_entries\":[0,3,1]"));
        assert!(json.contains("\"p99\":4096"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn validator_accepts_rfc_shapes() {
        for ok in [
            "{}",
            "[]",
            "  null ",
            "-0.5e+10",
            "[1,2,[3,{\"a\":\"b\\n\\u00e9\"}],true,false,null]",
            "{\"k\":{\"nested\":[{},{}]}}",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_non_json() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"ctrl\u{0}\"",
            "nul",
            "{} trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
