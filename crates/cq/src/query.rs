//! Safe conjunctive queries.

use crate::atom::{Atom, Predicate};
use crate::subst::Subst;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::collections::HashSet;
use std::fmt;

/// A conjunctive query `name(head) :- body` (§2.1 of the paper).
///
/// The body is a **multiset** of atoms: duplicate subgoals are kept and are
/// semantically significant under bag and bag-set semantics (Example 4.9 /
/// Theorem 4.2 of the paper). Nothing in this crate deduplicates implicitly;
/// use [`crate::iso::canonical_representation`] for the set-semantics view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CqQuery {
    /// The query (head predicate) name.
    pub name: Symbol,
    /// Head terms — the output tuple.
    pub head: Vec<Term>,
    /// Body atoms (a multiset).
    pub body: Vec<Atom>,
}

impl CqQuery {
    /// Builds a query. Does not check safety; see [`CqQuery::is_safe`].
    pub fn new(name: &str, head: Vec<Term>, body: Vec<Atom>) -> CqQuery {
        CqQuery { name: Symbol::new(name), head, body }
    }

    /// Head variables in order of first occurrence, without repeats.
    pub fn head_vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        self.head.iter().filter_map(Term::as_var).filter(|v| seen.insert(*v)).collect()
    }

    /// Body variables in order of first occurrence, without repeats.
    pub fn body_vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        self.body
            .iter()
            .flat_map(|a| a.args.iter())
            .filter_map(Term::as_var)
            .filter(|v| seen.insert(*v))
            .collect()
    }

    /// All variables (head then body), without repeats.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut seen = HashSet::new();
        self.head
            .iter()
            .chain(self.body.iter().flat_map(|a| a.args.iter()))
            .filter_map(Term::as_var)
            .filter(|v| seen.insert(*v))
            .collect()
    }

    /// A query is safe iff every head variable appears in the body and the
    /// body is nonempty.
    pub fn is_safe(&self) -> bool {
        if self.body.is_empty() {
            return false;
        }
        let body: HashSet<Var> = self.body_vars().into_iter().collect();
        self.head_vars().iter().all(|v| body.contains(v))
    }

    /// The set of predicate/arity pairs used in the body.
    pub fn predicates(&self) -> HashSet<(Predicate, usize)> {
        self.body.iter().map(Atom::key).collect()
    }

    /// Number of body atoms with the given predicate (any arity).
    pub fn count_pred(&self, pred: Predicate) -> usize {
        self.body.iter().filter(|a| a.pred == pred).count()
    }

    /// Applies a substitution to head and body.
    pub fn apply(&self, s: &Subst) -> CqQuery {
        CqQuery {
            name: self.name,
            head: self.head.iter().map(|t| s.apply_term(t)).collect(),
            body: s.apply_atoms(&self.body),
        }
    }

    /// Renames all variables of `self` so that they are disjoint from
    /// `avoid`, drawing fresh names from `supply`. Returns the renamed query
    /// and the renaming used.
    pub fn rename_apart(&self, avoid: &HashSet<Var>, supply: &mut VarSupply) -> (CqQuery, Subst) {
        let mut s = Subst::new();
        for v in self.all_vars() {
            if avoid.contains(&v) {
                let fresh = supply.fresh(v.name());
                s.set(v, Term::Var(fresh));
            }
        }
        (self.apply(&s), s)
    }

    /// Returns a copy whose body has `atom` appended.
    pub fn with_atom(&self, atom: Atom) -> CqQuery {
        let mut q = self.clone();
        q.body.push(atom);
        q
    }

    /// Total size: number of body atoms.
    pub fn size(&self) -> usize {
        self.body.len()
    }
}

impl fmt::Display for CqQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A deterministic supply of fresh variables that avoids a recorded set of
/// used names. Chase steps and query renamings draw from one of these so
/// output is reproducible.
#[derive(Clone, Debug, Default)]
pub struct VarSupply {
    used: HashSet<Symbol>,
    counter: u64,
}

impl VarSupply {
    /// A supply avoiding every variable of the given queries.
    pub fn avoiding<'a>(queries: impl IntoIterator<Item = &'a CqQuery>) -> VarSupply {
        let mut s = VarSupply::default();
        for q in queries {
            s.record_query(q);
        }
        s
    }

    /// Records the variables of `q` as used.
    pub fn record_query(&mut self, q: &CqQuery) {
        for v in q.all_vars() {
            self.used.insert(v.0);
        }
    }

    /// Records the variables of the atoms as used.
    pub fn record_atoms(&mut self, atoms: &[Atom]) {
        for a in atoms {
            for v in a.vars() {
                self.used.insert(v.0);
            }
        }
    }

    /// Marks a single variable as used.
    pub fn record_var(&mut self, v: Var) {
        self.used.insert(v.0);
    }

    /// Produces a fresh variable whose name starts with `hint`.
    pub fn fresh(&mut self, hint: &str) -> Var {
        loop {
            self.counter += 1;
            let name = format!("{hint}_{}", self.counter);
            let sym = Symbol::new(&name);
            if self.used.insert(sym) {
                return Var(sym);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q1() -> CqQuery {
        CqQuery::new(
            "q",
            vec![Term::var("X")],
            vec![
                Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
                Atom::new("s", vec![Term::var("X"), Term::var("Z")]),
            ],
        )
    }

    #[test]
    fn safety() {
        assert!(q1().is_safe());
        let unsafe_q = CqQuery::new(
            "q",
            vec![Term::var("W")],
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(!unsafe_q.is_safe());
        let empty = CqQuery::new("q", vec![], vec![]);
        assert!(!empty.is_safe());
    }

    #[test]
    fn var_collection_is_ordered_and_unique() {
        let q = q1();
        assert_eq!(q.body_vars(), vec![Var::new("X"), Var::new("Y"), Var::new("Z")]);
        assert_eq!(q.head_vars(), vec![Var::new("X")]);
    }

    #[test]
    fn display() {
        assert_eq!(q1().to_string(), "q(X) :- p(X, Y), s(X, Z)");
    }

    #[test]
    fn rename_apart_avoids_collisions() {
        let q = q1();
        let avoid: HashSet<Var> = [Var::new("X"), Var::new("Y")].into_iter().collect();
        let mut supply = VarSupply::avoiding([&q]);
        let (r, s) = q.rename_apart(&avoid, &mut supply);
        assert_eq!(s.len(), 2);
        let rv: HashSet<Var> = r.all_vars().into_iter().collect();
        assert!(!rv.contains(&Var::new("X")));
        assert!(!rv.contains(&Var::new("Y")));
        assert!(rv.contains(&Var::new("Z"))); // untouched
        assert!(r.is_safe());
    }

    #[test]
    fn fresh_vars_never_repeat() {
        let mut s = VarSupply::default();
        let a = s.fresh("V");
        let b = s.fresh("V");
        assert_ne!(a, b);
    }

    #[test]
    fn count_pred_counts_duplicates() {
        let mut q = q1();
        q.body.push(Atom::new("p", vec![Term::var("X"), Term::var("Y")]));
        assert_eq!(q.count_pred(Predicate::new("p")), 2);
        assert_eq!(q.count_pred(Predicate::new("s")), 1);
    }
}
