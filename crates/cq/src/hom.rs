//! Homomorphisms between conjunctions of atoms and containment mappings
//! between conjunctive queries (Chandra–Merlin \[2\]).
//!
//! A homomorphism from conjunction `φ(U)` to conjunction `ψ(V)` maps the
//! variables of `φ` to terms of `ψ` such that constants are fixed and every
//! atom of `φ` lands on an atom of `ψ` (§2.1 of the paper). Containment-
//! mapping search is NP-complete in general; the inputs in this workspace
//! are small symbolic queries.
//!
//! Since the matcher refactor these free functions are thin wrappers over
//! the planned, trail-based search in [`crate::matcher`]; the plans they
//! build preserve the source atom order, so emission order (and therefore
//! every "first homomorphism" choice) is identical to the historical naive
//! backtracker, which survives as [`crate::matcher::reference`]. Callers
//! with a hot loop should compile a [`MatchPlan`]
//! once and search it directly instead of paying the per-call compile here.

use crate::atom::Atom;
use crate::matcher::{MatchPlan, Seed, Target};
use crate::query::CqQuery;
use crate::subst::Subst;
use crate::term::Term;

pub use crate::matcher::{bucket_atoms, Buckets};

/// Upper bound on the number of homomorphisms [`enumerate_homomorphisms`]
/// will materialize before reporting truncation (a guard against
/// pathological inputs; the chase never comes close on paper-scale
/// inputs).
pub const MAX_HOMOMORPHISMS: usize = 200_000;

/// The result of an exhaustive homomorphism enumeration.
#[derive(Clone, Debug)]
pub struct HomEnumeration {
    /// The homomorphisms found, deduplicated by their variable bindings,
    /// in the deterministic search order.
    pub homs: Vec<Subst>,
    /// Did the enumeration stop at [`MAX_HOMOMORPHISMS`] with candidates
    /// left unexplored? When set, `homs` is an arbitrary prefix — treat
    /// any universally quantified conclusion drawn from it as unverified.
    pub truncated: bool,
}

/// Lazily enumerates homomorphisms from `src` into `dst` extending `seed`,
/// restricted to the target atoms listed in `buckets` (which may cover only
/// a live subset of `dst` — dead slots simply never appear as candidates).
/// `emit` receives each complete homomorphism; returning `false` stops the
/// search immediately. No homomorphism set is ever materialized, but each
/// emission does materialize one `Subst` for the callback — hot loops
/// should search a compiled [`MatchPlan`] directly and read the borrowed
/// [`Match`](crate::matcher::Match) instead.
pub fn search_homomorphisms(
    src: &[Atom],
    dst: &[Atom],
    buckets: &Buckets,
    seed: &Subst,
    emit: &mut dyn FnMut(&Subst) -> bool,
) {
    let plan = MatchPlan::new(src);
    plan.search(Target::new(dst, buckets), &Seed::Subst(seed), &mut |m| emit(&m.to_subst()));
}

/// Finds one homomorphism from `src` to `dst` extending `seed` and
/// satisfying `pred`, short-circuiting at the first hit. Candidates are
/// enumerated in the same deterministic order as [`enumerate_homomorphisms`].
pub fn find_homomorphism_where(
    src: &[Atom],
    dst: &[Atom],
    seed: &Subst,
    pred: &mut dyn FnMut(&Subst) -> bool,
) -> Option<Subst> {
    let buckets = bucket_atoms(dst);
    let plan = MatchPlan::new(src);
    let mut found: Option<Subst> = None;
    plan.search(Target::new(dst, &buckets), &Seed::Subst(seed), &mut |m| {
        let h = m.to_subst();
        if pred(&h) {
            found = Some(h);
            false
        } else {
            true
        }
    });
    found
}

/// Finds one homomorphism from `src` to `dst` extending `seed`, if any.
pub fn extend_homomorphism(src: &[Atom], dst: &[Atom], seed: &Subst) -> Option<Subst> {
    let buckets = bucket_atoms(dst);
    extend_homomorphism_with_buckets(src, dst, &buckets, seed)
}

/// [`extend_homomorphism`] against caller-maintained buckets.
pub fn extend_homomorphism_with_buckets(
    src: &[Atom],
    dst: &[Atom],
    buckets: &Buckets,
    seed: &Subst,
) -> Option<Subst> {
    MatchPlan::new(src).first_match(Target::new(dst, buckets), &Seed::Subst(seed))
}

/// Finds one homomorphism from `src` to `dst`, if any.
pub fn find_homomorphism(src: &[Atom], dst: &[Atom]) -> Option<Subst> {
    extend_homomorphism(src, dst, &Subst::new())
}

/// Enumerates all homomorphisms from `src` to `dst` extending `seed`,
/// deduplicated by their variable bindings. Deduplication compares the
/// plan's dense slot array in place — no per-emission allocation — and
/// enumeration past [`MAX_HOMOMORPHISMS`] is reported via
/// [`HomEnumeration::truncated`] instead of being silently dropped.
pub fn enumerate_homomorphisms(src: &[Atom], dst: &[Atom], seed: &Subst) -> HomEnumeration {
    let buckets = bucket_atoms(dst);
    let plan = MatchPlan::new(src);
    let mut homs: Vec<Subst> = Vec::new();
    let mut truncated = false;
    let mut seen: std::collections::HashSet<Box<[Term]>> = std::collections::HashSet::new();
    plan.search(Target::new(dst, &buckets), &Seed::Subst(seed), &mut |m| {
        // Membership test borrows the live slot slice; only genuinely new
        // homomorphisms allocate (their `Subst` is materialized anyway).
        if seen.contains(m.slots()) {
            return true;
        }
        if homs.len() == MAX_HOMOMORPHISMS {
            truncated = true;
            return false;
        }
        seen.insert(m.slots().to_vec().into_boxed_slice());
        homs.push(m.to_subst());
        true
    });
    HomEnumeration { homs, truncated }
}

/// A containment mapping from `from` to `to`: a homomorphism between the
/// bodies that maps the head of `from` onto the head of `to`, position by
/// position (§2.1). By Chandra–Merlin, one exists iff `to ⊑_S from`.
pub fn containment_mapping(from: &CqQuery, to: &CqQuery) -> Option<Subst> {
    if from.head.len() != to.head.len() {
        return None;
    }
    let mut seed = Subst::new();
    for (ft, tt) in from.head.iter().zip(to.head.iter()) {
        match ft {
            Term::Const(c) => {
                if *tt != Term::Const(*c) {
                    return None;
                }
            }
            Term::Var(v) => {
                if !seed.bind(*v, *tt) {
                    return None;
                }
            }
        }
    }
    // Reference-order plan: containment checks run overwhelmingly on
    // small bodies (C&B subqueries, equivalence probes) where the O(n)
    // compile wins, and it keeps the historical first-match choice.
    let plan = MatchPlan::new(&from.body);
    let buckets = bucket_atoms(&to.body);
    plan.first_match(Target::new(&to.body, &buckets), &Seed::Subst(&seed))
}

/// Checks that `h` really is a containment mapping from `from` to `to`:
/// every head term of `from` maps onto the corresponding head term of `to`
/// and every body atom of `from` lands (under `h`) on some body atom of
/// `to`. Constants are fixed by construction ([`Subst`] maps variables
/// only).
///
/// This is the *certificate replay* half of [`containment_mapping`]: a
/// caller handed a witnessing substitution (e.g. out of a cached or
/// serialized verdict) can confirm it against the queries without trusting
/// the search that produced it.
pub fn is_containment_mapping(from: &CqQuery, to: &CqQuery, h: &Subst) -> bool {
    if from.head.len() != to.head.len() {
        return false;
    }
    if from.head.iter().zip(to.head.iter()).any(|(f, t)| h.apply_term(f) != *t) {
        return false;
    }
    from.body.iter().all(|a| to.body.contains(&h.apply_atom(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        assert!(find_homomorphism(&a.body, &a.body).is_some());
    }

    #[test]
    fn homomorphism_can_collapse_variables() {
        let src = q("q(X) :- p(X,Y), p(Y,X)");
        let dst = q("q(X) :- p(X,X)");
        let h = find_homomorphism(&src.body, &dst.body).unwrap();
        assert_eq!(h.apply_term(&Term::var("Y")), h.apply_term(&Term::var("X")));
    }

    #[test]
    fn no_homomorphism_on_missing_predicate() {
        let src = q("q(X) :- p(X,Y), r(Y)");
        let dst = q("q(X) :- p(X,Y)");
        assert!(find_homomorphism(&src.body, &dst.body).is_none());
    }

    #[test]
    fn constants_must_match() {
        let src = q("q(X) :- p(X, 3)");
        let dst_ok = q("q(X) :- p(X, 3)");
        let dst_bad = q("q(X) :- p(X, 4)");
        assert!(find_homomorphism(&src.body, &dst_ok.body).is_some());
        assert!(find_homomorphism(&src.body, &dst_bad.body).is_none());
    }

    #[test]
    fn all_homomorphisms_counts_targets() {
        let src = q("q() :- p(X)");
        let dst = q("q() :- p(A), p(B), p(C)");
        let e = enumerate_homomorphisms(&src.body, &dst.body, &Subst::new());
        assert_eq!(e.homs.len(), 3);
        assert!(!e.truncated);
    }

    #[test]
    fn all_homomorphisms_dedups_bindings() {
        // Duplicate target atoms yield the same variable mapping.
        let src = q("q() :- p(X)");
        let dst = q("q() :- p(A), p(A)");
        let e = enumerate_homomorphisms(&src.body, &dst.body, &Subst::new());
        assert_eq!(e.homs.len(), 1);
    }

    #[test]
    fn enumeration_reports_truncation() {
        // 2^18 = 262144 > MAX_HOMOMORPHISMS homomorphisms: 18 independent
        // source atoms with 2 candidates each.
        let src_body: Vec<Atom> = (0..18)
            .map(|i| Atom::new(&format!("p{i}"), vec![Term::var(&format!("X{i}"))]))
            .collect();
        let mut dst_body: Vec<Atom> = Vec::new();
        for i in 0..18 {
            dst_body.push(Atom::new(&format!("p{i}"), vec![Term::int(0)]));
            dst_body.push(Atom::new(&format!("p{i}"), vec![Term::int(1)]));
        }
        let e = enumerate_homomorphisms(&src_body, &dst_body, &Subst::new());
        assert!(e.truncated);
        assert_eq!(e.homs.len(), MAX_HOMOMORPHISMS);
        // A small instance is complete and unflagged.
        let small = enumerate_homomorphisms(&src_body[..2], &dst_body[..4], &Subst::new());
        assert!(!small.truncated);
        assert_eq!(small.homs.len(), 4);
    }

    #[test]
    fn containment_mapping_respects_head() {
        // Classic: q1(X) :- p(X,Y) contains q2(X) :- p(X,X)? A containment
        // mapping from q1 to q2 maps X->X, Y->X: exists, so q2 ⊑ q1.
        let q1 = q("q(X) :- p(X,Y)");
        let q2 = q("q(X) :- p(X,X)");
        assert!(containment_mapping(&q1, &q2).is_some());
        // The other direction requires mapping p(X,X) into p(X,Y) with
        // X->X: impossible since Y≠X.
        assert!(containment_mapping(&q2, &q1).is_none());
    }

    #[test]
    fn containment_mapping_head_constant() {
        let q1 = q("q(3) :- p(3,Y)");
        let q2 = q("q(3) :- p(3,4)");
        assert!(containment_mapping(&q1, &q2).is_some());
        let q3 = q("q(5) :- p(5,4)");
        assert!(containment_mapping(&q1, &q3).is_none());
    }

    #[test]
    fn containment_mapping_witness_replays() {
        let q1 = q("q(X) :- p(X,Y)");
        let q2 = q("q(X) :- p(X,X)");
        let h = containment_mapping(&q1, &q2).unwrap();
        assert!(is_containment_mapping(&q1, &q2, &h));
        // A corrupted witness is rejected.
        let mut bad = Subst::new();
        bad.set(crate::term::Var::new("X"), Term::var("Y"));
        assert!(!is_containment_mapping(&q1, &q2, &bad));
        // The empty substitution is not a containment mapping here either:
        // p(X,Y) is not an atom of q2.
        assert!(!is_containment_mapping(&q1, &q2, &Subst::new()));
    }

    #[test]
    fn seeded_extension() {
        let src = q("q() :- p(X,Y)");
        let dst = q("q() :- p(1,2), p(3,4)");
        let seed = Subst::from_pairs([(crate::term::Var::new("X"), Term::int(3))]);
        let h = extend_homomorphism(&src.body, &dst.body, &seed).unwrap();
        assert_eq!(h.apply_term(&Term::var("Y")), Term::int(4));
    }

    #[test]
    fn wrappers_agree_with_reference_backtracker() {
        let src = q("q() :- p(X,Y), p(Y,Z), r(Z)");
        let dst = q("q() :- p(1,2), p(2,3), p(2,2), r(3), r(2)");
        let planned = enumerate_homomorphisms(&src.body, &dst.body, &Subst::new()).homs;
        let (naive, truncated) = crate::matcher::reference::enumerate_homomorphisms(
            &src.body,
            &dst.body,
            &Subst::new(),
            MAX_HOMOMORPHISMS,
        );
        assert!(!truncated);
        assert_eq!(planned, naive, "emission order or dedup diverged from the oracle");
        assert_eq!(
            find_homomorphism(&src.body, &dst.body),
            crate::matcher::reference::extend_homomorphism(&src.body, &dst.body, &Subst::new())
        );
    }
}
