//! Homomorphisms between conjunctions of atoms and containment mappings
//! between conjunctive queries (Chandra–Merlin [2]).
//!
//! A homomorphism from conjunction `φ(U)` to conjunction `ψ(V)` maps the
//! variables of `φ` to terms of `ψ` such that constants are fixed and every
//! atom of `φ` lands on an atom of `ψ` (§2.1 of the paper). The search is a
//! straightforward backtracking over the atoms of `φ`, bucketing the target
//! atoms by predicate. Containment-mapping search is NP-complete in general;
//! the inputs in this workspace are small symbolic queries.

use crate::atom::Atom;
use crate::query::CqQuery;
use crate::subst::Subst;
use crate::term::Term;
use std::collections::HashMap;

/// Upper bound on the number of homomorphisms [`all_homomorphisms`] will
/// enumerate before giving up (a guard against pathological inputs; the
/// chase never comes close on paper-scale inputs).
pub const MAX_HOMOMORPHISMS: usize = 200_000;

/// Target atoms bucketed by predicate/arity: for each key, the indices into
/// the target slice holding an atom with that key, in ascending order.
///
/// Callers that repeatedly search the same (evolving) target — the
/// incremental chase engine — maintain one of these across calls instead of
/// letting every search rebuild it.
pub type Buckets = HashMap<(crate::atom::Predicate, usize), Vec<usize>>;

/// Builds the bucket map for a target slice.
pub fn bucket_atoms(atoms: &[Atom]) -> Buckets {
    let mut m: Buckets = HashMap::new();
    for (i, a) in atoms.iter().enumerate() {
        m.entry(a.key()).or_default().push(i);
    }
    m
}

/// Tries to unify the source atom with the target atom under `s`,
/// mutating `s`. Returns the bindings added (for backtracking) or `None`.
fn match_atom(src: &Atom, dst: &Atom, s: &mut Subst) -> Option<Vec<crate::term::Var>> {
    debug_assert_eq!(src.key(), dst.key());
    let mut added = Vec::new();
    for (st, dt) in src.args.iter().zip(dst.args.iter()) {
        match st {
            Term::Const(c) => {
                if *dt != Term::Const(*c) {
                    for v in &added {
                        s.remove(*v);
                    }
                    return None;
                }
            }
            Term::Var(v) => match s.get(*v) {
                Some(bound) => {
                    if bound != dt {
                        for w in &added {
                            s.remove(*w);
                        }
                        return None;
                    }
                }
                None => {
                    s.set(*v, *dt);
                    added.push(*v);
                }
            },
        }
    }
    Some(added)
}

/// Backtracking search. `emit` is called with each complete homomorphism;
/// returning `false` from `emit` stops the search.
fn search(
    src: &[Atom],
    dst: &[Atom],
    buckets: &HashMap<(crate::atom::Predicate, usize), Vec<usize>>,
    idx: usize,
    s: &mut Subst,
    emit: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    if idx == src.len() {
        return emit(s);
    }
    let atom = &src[idx];
    let Some(cands) = buckets.get(&atom.key()) else {
        return true; // no candidates: this branch yields nothing, keep going
    };
    for &j in cands {
        if let Some(added) = match_atom(atom, &dst[j], s) {
            let keep_going = search(src, dst, buckets, idx + 1, s, emit);
            for v in added {
                s.remove(v);
            }
            if !keep_going {
                return false;
            }
        }
    }
    true
}

/// Lazily enumerates homomorphisms from `src` into `dst` extending `seed`,
/// restricted to the target atoms listed in `buckets` (which may cover only
/// a live subset of `dst` — dead slots simply never appear as candidates).
/// `emit` receives each complete homomorphism; returning `false` stops the
/// search immediately. This is the first-match workhorse of the incremental
/// chase engine: no homomorphism set is ever materialized.
pub fn search_homomorphisms(
    src: &[Atom],
    dst: &[Atom],
    buckets: &Buckets,
    seed: &Subst,
    emit: &mut dyn FnMut(&Subst) -> bool,
) {
    let mut s = seed.clone();
    search(src, dst, buckets, 0, &mut s, emit);
}

/// Finds one homomorphism from `src` to `dst` extending `seed` and
/// satisfying `pred`, short-circuiting at the first hit. Candidates are
/// enumerated in the same deterministic order as [`all_homomorphisms`].
pub fn find_homomorphism_where(
    src: &[Atom],
    dst: &[Atom],
    seed: &Subst,
    pred: &mut dyn FnMut(&Subst) -> bool,
) -> Option<Subst> {
    let buckets = bucket_atoms(dst);
    let mut s = seed.clone();
    let mut found: Option<Subst> = None;
    search(src, dst, &buckets, 0, &mut s, &mut |h| {
        if pred(h) {
            found = Some(h.clone());
            false
        } else {
            true
        }
    });
    found
}

/// Finds one homomorphism from `src` to `dst` extending `seed`, if any.
pub fn extend_homomorphism(src: &[Atom], dst: &[Atom], seed: &Subst) -> Option<Subst> {
    let buckets = bucket_atoms(dst);
    extend_homomorphism_with_buckets(src, dst, &buckets, seed)
}

/// [`extend_homomorphism`] against caller-maintained buckets.
pub fn extend_homomorphism_with_buckets(
    src: &[Atom],
    dst: &[Atom],
    buckets: &Buckets,
    seed: &Subst,
) -> Option<Subst> {
    let mut s = seed.clone();
    let mut found: Option<Subst> = None;
    search(src, dst, buckets, 0, &mut s, &mut |h| {
        found = Some(h.clone());
        false
    });
    found
}

/// Finds one homomorphism from `src` to `dst`, if any.
pub fn find_homomorphism(src: &[Atom], dst: &[Atom]) -> Option<Subst> {
    extend_homomorphism(src, dst, &Subst::new())
}

/// Enumerates all homomorphisms from `src` to `dst` extending `seed`,
/// deduplicated by their variable bindings. Enumeration stops (silently) at
/// [`MAX_HOMOMORPHISMS`].
pub fn all_homomorphisms(src: &[Atom], dst: &[Atom], seed: &Subst) -> Vec<Subst> {
    let buckets = bucket_atoms(dst);
    let mut s = seed.clone();
    let mut out: Vec<Subst> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<(crate::term::Var, Term)>> =
        std::collections::HashSet::new();
    search(src, dst, &buckets, 0, &mut s, &mut |h| {
        if seen.insert(h.sorted_pairs()) {
            out.push(h.clone());
        }
        out.len() < MAX_HOMOMORPHISMS
    });
    out
}

/// A containment mapping from `from` to `to`: a homomorphism between the
/// bodies that maps the head of `from` onto the head of `to`, position by
/// position (§2.1). By Chandra–Merlin, one exists iff `to ⊑_S from`.
pub fn containment_mapping(from: &CqQuery, to: &CqQuery) -> Option<Subst> {
    if from.head.len() != to.head.len() {
        return None;
    }
    let mut seed = Subst::new();
    for (ft, tt) in from.head.iter().zip(to.head.iter()) {
        match ft {
            Term::Const(c) => {
                if *tt != Term::Const(*c) {
                    return None;
                }
            }
            Term::Var(v) => {
                if !seed.bind(*v, *tt) {
                    return None;
                }
            }
        }
    }
    extend_homomorphism(&from.body, &to.body, &seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        assert!(find_homomorphism(&a.body, &a.body).is_some());
    }

    #[test]
    fn homomorphism_can_collapse_variables() {
        let src = q("q(X) :- p(X,Y), p(Y,X)");
        let dst = q("q(X) :- p(X,X)");
        let h = find_homomorphism(&src.body, &dst.body).unwrap();
        assert_eq!(h.apply_term(&Term::var("Y")), h.apply_term(&Term::var("X")));
    }

    #[test]
    fn no_homomorphism_on_missing_predicate() {
        let src = q("q(X) :- p(X,Y), r(Y)");
        let dst = q("q(X) :- p(X,Y)");
        assert!(find_homomorphism(&src.body, &dst.body).is_none());
    }

    #[test]
    fn constants_must_match() {
        let src = q("q(X) :- p(X, 3)");
        let dst_ok = q("q(X) :- p(X, 3)");
        let dst_bad = q("q(X) :- p(X, 4)");
        assert!(find_homomorphism(&src.body, &dst_ok.body).is_some());
        assert!(find_homomorphism(&src.body, &dst_bad.body).is_none());
    }

    #[test]
    fn all_homomorphisms_counts_targets() {
        let src = q("q() :- p(X)");
        let dst = q("q() :- p(A), p(B), p(C)");
        let hs = all_homomorphisms(&src.body, &dst.body, &Subst::new());
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn all_homomorphisms_dedups_bindings() {
        // Duplicate target atoms yield the same variable mapping.
        let src = q("q() :- p(X)");
        let dst = q("q() :- p(A), p(A)");
        let hs = all_homomorphisms(&src.body, &dst.body, &Subst::new());
        assert_eq!(hs.len(), 1);
    }

    #[test]
    fn containment_mapping_respects_head() {
        // Classic: q1(X) :- p(X,Y) contains q2(X) :- p(X,X)? A containment
        // mapping from q1 to q2 maps X->X, Y->X: exists, so q2 ⊑ q1.
        let q1 = q("q(X) :- p(X,Y)");
        let q2 = q("q(X) :- p(X,X)");
        assert!(containment_mapping(&q1, &q2).is_some());
        // The other direction requires mapping p(X,X) into p(X,Y) with
        // X->X: impossible since Y≠X.
        assert!(containment_mapping(&q2, &q1).is_none());
    }

    #[test]
    fn containment_mapping_head_constant() {
        let q1 = q("q(3) :- p(3,Y)");
        let q2 = q("q(3) :- p(3,4)");
        assert!(containment_mapping(&q1, &q2).is_some());
        let q3 = q("q(5) :- p(5,4)");
        assert!(containment_mapping(&q1, &q3).is_none());
    }

    #[test]
    fn seeded_extension() {
        let src = q("q() :- p(X,Y)");
        let dst = q("q() :- p(1,2), p(3,4)");
        let seed = Subst::from_pairs([(crate::term::Var::new("X"), Term::int(3))]);
        let h = extend_homomorphism(&src.body, &dst.body, &seed).unwrap();
        assert_eq!(h.apply_term(&Term::var("Y")), Term::int(4));
    }
}
