//! Substitutions: finite maps from variables to terms.
//!
//! Substitutions double as homomorphisms (between conjunctions of atoms) and
//! as the "accumulated renaming" tracked through a chase sequence, which the
//! assignment-fixing test of Definition 4.3 needs (see
//! `eqsql-chase::assignment_fixing`).

use crate::atom::Atom;
use crate::term::{Term, Var};
use std::collections::HashMap;
use std::fmt;

/// A substitution `{X1 -> t1, ..., Xn -> tn}`.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
pub struct Subst {
    map: HashMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Builds a substitution from pairs. Later pairs overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Term)>) -> Subst {
        Subst { map: pairs.into_iter().collect() }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The binding of `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Binds `v -> t`, returning `false` (and leaving the substitution
    /// unchanged) if `v` is already bound to a different term.
    #[must_use]
    pub fn bind(&mut self, v: Var, t: Term) -> bool {
        match self.map.get(&v) {
            Some(existing) => *existing == t,
            None => {
                self.map.insert(v, t);
                true
            }
        }
    }

    /// Unconditionally sets `v -> t`.
    pub fn set(&mut self, v: Var, t: Term) {
        self.map.insert(v, t);
    }

    /// Removes the binding for `v`, returning it if present.
    pub fn remove(&mut self, v: Var) -> Option<Term> {
        self.map.remove(&v)
    }

    /// Applies the substitution to a term. Unbound variables map to
    /// themselves; constants map to themselves.
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.map.get(v).copied().unwrap_or(*t),
            Term::Const(_) => *t,
        }
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom { pred: a.pred, args: a.args.iter().map(|t| self.apply_term(t)).collect() }
    }

    /// Applies the substitution to a slice of atoms.
    pub fn apply_atoms(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.apply_atom(a)).collect()
    }

    /// Rewrites the substitution so that, from now on, variable `from` is
    /// considered replaced by term `to` *everywhere*: the images of existing
    /// bindings are updated, and a binding `from -> to` is recorded.
    ///
    /// This is the update performed when an egd chase step replaces
    /// `from` by `to`; composing these keeps the substitution equal to the
    /// total renaming applied so far.
    pub fn rewrite(&mut self, from: Var, to: Term) {
        for t in self.map.values_mut() {
            if *t == Term::Var(from) {
                *t = to;
            }
        }
        self.map.entry(from).or_insert(to);
        // If `from` had an existing binding, keep it consistent: its image
        // must also be rewritten, which the loop above already did.
    }

    /// Iterates over the bindings in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> + '_ {
        self.map.iter().map(|(v, t)| (*v, t))
    }

    /// Sorted bindings (deterministic; used for hashing/dedup of
    /// homomorphism sets).
    pub fn sorted_pairs(&self) -> Vec<(Var, Term)> {
        let mut v: Vec<(Var, Term)> = self.map.iter().map(|(v, t)| (*v, *t)).collect();
        v.sort();
        v
    }

    /// Restricts the substitution to the given variables.
    pub fn restrict(&self, vars: &[Var]) -> Subst {
        Subst { map: vars.iter().filter_map(|v| self.map.get(v).map(|t| (*v, *t))).collect() }
    }

    /// Composition: `(self.then(other))(x) = other(self(x))`, with `other`
    /// also applied to variables `self` leaves unbound.
    pub fn then(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (v, t) in self.iter() {
            out.set(v, other.apply_term(t));
        }
        for (v, t) in other.iter() {
            out.map.entry(v).or_insert(*t);
        }
        out
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.sorted_pairs().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    #[test]
    fn bind_rejects_conflicts() {
        let mut s = Subst::new();
        assert!(s.bind(v("X"), Term::int(1)));
        assert!(s.bind(v("X"), Term::int(1)));
        assert!(!s.bind(v("X"), Term::int(2)));
        assert_eq!(s.get(v("X")), Some(&Term::int(1)));
    }

    #[test]
    fn apply_leaves_unbound_vars() {
        let s = Subst::from_pairs([(v("X"), Term::int(1))]);
        assert_eq!(s.apply_term(&Term::var("Y")), Term::var("Y"));
        assert_eq!(s.apply_term(&Term::var("X")), Term::int(1));
    }

    #[test]
    fn rewrite_composes_like_chase_egds() {
        // Start with nothing; rewrite Z1 -> Z, then Z -> W. The final image
        // of Z1 must be W.
        let mut s = Subst::new();
        s.rewrite(v("Z1"), Term::var("Z"));
        s.rewrite(v("Z"), Term::var("W"));
        assert_eq!(s.apply_term(&Term::var("Z1")), Term::var("W"));
        assert_eq!(s.apply_term(&Term::var("Z")), Term::var("W"));
    }

    #[test]
    fn then_composes() {
        let s1 = Subst::from_pairs([(v("X"), Term::var("Y"))]);
        let s2 = Subst::from_pairs([(v("Y"), Term::int(3))]);
        let c = s1.then(&s2);
        assert_eq!(c.apply_term(&Term::var("X")), Term::int(3));
        assert_eq!(c.apply_term(&Term::var("Y")), Term::int(3));
    }

    #[test]
    fn restrict_projects() {
        let s = Subst::from_pairs([(v("X"), Term::int(1)), (v("Y"), Term::int(2))]);
        let r = s.restrict(&[v("X")]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(v("X")), Some(&Term::int(1)));
    }

    #[test]
    fn display_is_sorted() {
        let s = Subst::from_pairs([(v("B"), Term::int(2)), (v("A"), Term::int(1))]);
        assert_eq!(s.to_string(), "{A -> 1, B -> 2}");
    }
}
