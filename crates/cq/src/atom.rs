//! Relational atoms.

use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// A predicate (relation) name.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Predicate(pub Symbol);

impl Predicate {
    /// A predicate with the given name.
    pub fn new(name: &str) -> Predicate {
        Predicate(Symbol::new(name))
    }

    /// The predicate's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A relational atom `p(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate.
    pub pred: Predicate,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom { pred: Predicate::new(pred), args }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterates over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Is the atom ground (variable-free)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Predicate/arity key, used to bucket atoms.
    pub fn key(&self) -> (Predicate, usize) {
        (self.pred, self.arity())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_basics() {
        let a = Atom::new("p", vec![Term::var("X"), Term::int(3)]);
        assert_eq!(a.arity(), 2);
        assert!(!a.is_ground());
        assert_eq!(a.vars().count(), 1);
        assert_eq!(a.to_string(), "p(X, 3)");
    }

    #[test]
    fn ground_atom() {
        let a = Atom::new("p", vec![Term::int(1), Term::int(2)]);
        assert!(a.is_ground());
    }
}
