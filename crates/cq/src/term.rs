//! Variables and terms.

use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// A query variable, identified by its (interned) name.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub Symbol);

impl Var {
    /// A variable with the given name.
    pub fn new(name: &str) -> Var {
        Var(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A term: a variable or a constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a named variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Var::new(name))
    }

    /// Shorthand for an integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(*c),
        }
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let t = Term::var("X");
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var::new("X")));
        assert_eq!(t.as_const(), None);

        let c = Term::int(5);
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(Value::Int(5)));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Term::var("Abc").to_string(), "Abc");
        assert_eq!(Term::int(-3).to_string(), "-3");
    }
}
