//! A datalog-style text parser for conjunctive and aggregate queries.
//!
//! Grammar (informal):
//!
//! ```text
//! query     := name '(' head-terms? ')' (':-' | '<-') atom (( ',' | '&' ) atom)* '.'?
//! head-term := term | aggfn '(' (var | '*')? ')'
//! atom      := name '(' term (',' term)* ')'
//! term      := Variable            (identifier starting uppercase, or '_')
//!            | integer | real | 'string'
//!            | name                (lowercase identifier: a string constant)
//! aggfn     := sum | count | min | max
//! ```
//!
//! Uppercase identifiers are variables; `_` is an anonymous variable (fresh
//! per occurrence). At most one aggregate term is allowed, and it must be
//! the last head argument (the form used in §2.5 of the paper).

use crate::aggregate::{AggFn, AggregateQuery};
use crate::atom::Atom;
use crate::lex::{lex, Spanned, Token};
use crate::query::CqQuery;
use crate::term::{Term, Var};
use crate::value::Value;
use std::fmt;

/// A parse error with a byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lex::LexError> for ParseError {
    fn from(e: crate::lex::LexError) -> Self {
        ParseError { msg: e.msg, at: e.at }
    }
}

/// A parsed item: plain CQ or aggregate query.
#[derive(Clone, Debug, PartialEq)]
pub enum ParsedQuery {
    /// A plain conjunctive query.
    Cq(CqQuery),
    /// An aggregate query.
    Agg(AggregateQuery),
}

/// Token-stream cursor shared with the dependency parser in `eqsql-deps`.
pub struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
    anon: u64,
}

impl Cursor {
    /// Lexes `input` into a cursor.
    pub fn new(input: &str) -> Result<Cursor, ParseError> {
        Ok(Cursor { toks: lex(input)?, pos: 0, anon: 0 })
    }

    /// The current token, if any.
    pub fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    /// The token after the current one, if any.
    pub fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    /// Current byte position for error reporting.
    pub fn at(&self) -> usize {
        self.toks.get(self.pos).map_or(usize::MAX, |s| s.at)
    }

    /// Advances and returns the token.
    #[allow(clippy::should_implement_trait)] // parser cursor, not an Iterator
    pub fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the cursor exhausted?
    pub fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Errors at the current position.
    pub fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { msg: msg.into(), at: self.at() })
    }

    /// Consumes the given token or errors.
    pub fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected '{tok}', found '{t}'"))
            }
            None => self.err(format!("expected '{tok}', found end of input")),
        }
    }

    /// Consumes the token if it matches; returns whether it did.
    pub fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a term.
    pub fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(ident_to_term(&name, &mut self.anon)),
            Some(Token::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Token::Real(r)) => Ok(Term::Const(Value::real(r))),
            Some(Token::Str(s)) => Ok(Term::Const(Value::str(&s))),
            Some(t) => self.err(format!("expected a term, found '{t}'")),
            None => self.err("expected a term, found end of input"),
        }
    }

    /// Parses `name(t1, ..., tn)`.
    pub fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            Some(t) => return self.err(format!("expected predicate name, found '{t}'")),
            None => return self.err("expected predicate name, found end of input"),
        };
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                args.push(self.parse_term()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(&Token::Comma)?;
            }
        }
        Ok(Atom::new(&name, args))
    }

    /// Parses a conjunction `atom ((',' | '&') atom)*`.
    pub fn parse_conjunction(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = vec![self.parse_atom()?];
        while self.eat(&Token::Comma) || self.eat(&Token::Amp) {
            atoms.push(self.parse_atom()?);
        }
        Ok(atoms)
    }
}

fn ident_to_term(name: &str, anon: &mut u64) -> Term {
    let first = name.chars().next().unwrap_or('_');
    if name == "_" {
        *anon += 1;
        Term::Var(Var::new(&format!("_anon_{anon}")))
    } else if first.is_ascii_uppercase() || first == '_' {
        Term::Var(Var::new(name))
    } else {
        Term::Const(Value::str(name))
    }
}

fn agg_fn_of(name: &str) -> Option<AggFn> {
    match name {
        "sum" => Some(AggFn::Sum),
        "count" => Some(AggFn::Count),
        "min" => Some(AggFn::Min),
        "max" => Some(AggFn::Max),
        _ => None,
    }
}

fn parse_one(c: &mut Cursor) -> Result<ParsedQuery, ParseError> {
    let name = match c.next() {
        Some(Token::Ident(n)) => n,
        Some(t) => return c.err(format!("expected query name, found '{t}'")),
        None => return c.err("expected query name, found end of input"),
    };
    c.expect(&Token::LParen)?;
    let mut grouping: Vec<Term> = Vec::new();
    let mut agg: Option<(AggFn, Option<Var>)> = None;
    if !c.eat(&Token::RParen) {
        loop {
            // Either an aggregate head term or an ordinary term.
            let is_agg = matches!(c.peek(), Some(Token::Ident(n)) if agg_fn_of(n).is_some())
                && matches!(c.toks.get(c.pos + 1).map(|s| &s.tok), Some(Token::LParen));
            if is_agg {
                if agg.is_some() {
                    return c.err("at most one aggregate term is allowed in the head");
                }
                let Some(Token::Ident(fname)) = c.next() else { unreachable!() };
                let f = agg_fn_of(&fname).expect("checked above");
                c.expect(&Token::LParen)?;
                if c.eat(&Token::Star) {
                    c.expect(&Token::RParen)?;
                    agg = Some((AggFn::CountStar, None));
                } else if c.eat(&Token::RParen) {
                    if f == AggFn::Count {
                        agg = Some((AggFn::CountStar, None));
                    } else {
                        return c.err(format!("aggregate '{fname}' requires an argument"));
                    }
                } else {
                    let t = c.parse_term()?;
                    let Term::Var(v) = t else {
                        return c.err("aggregate argument must be a variable");
                    };
                    c.expect(&Token::RParen)?;
                    agg = Some((f, Some(v)));
                }
            } else {
                if agg.is_some() {
                    return c.err("the aggregate term must be the last head argument");
                }
                grouping.push(c.parse_term()?);
            }
            if c.eat(&Token::RParen) {
                break;
            }
            c.expect(&Token::Comma)?;
        }
    }
    if !(c.eat(&Token::Turnstile) || c.eat(&Token::LArrow)) {
        return c.err("expected ':-' or '<-'");
    }
    let body = c.parse_conjunction()?;
    c.eat(&Token::Dot);
    match agg {
        None => {
            let q = CqQuery { name: crate::symbol::Symbol::new(&name), head: grouping, body };
            if !q.is_safe() {
                return Err(ParseError {
                    msg: format!("query '{name}' is not safe"),
                    at: usize::MAX,
                });
            }
            Ok(ParsedQuery::Cq(q))
        }
        Some((f, v)) => {
            let q = AggregateQuery {
                name: crate::symbol::Symbol::new(&name),
                grouping,
                agg: f,
                agg_var: v,
                body,
            };
            if !q.is_valid() {
                return Err(ParseError {
                    msg: format!("aggregate query '{name}' is not valid/safe"),
                    at: usize::MAX,
                });
            }
            Ok(ParsedQuery::Agg(q))
        }
    }
}

/// Parses a single plain conjunctive query.
pub fn parse_query(input: &str) -> Result<CqQuery, ParseError> {
    let mut c = Cursor::new(input)?;
    match parse_one(&mut c)? {
        ParsedQuery::Cq(q) => {
            if !c.done() {
                return c.err("trailing input after query");
            }
            Ok(q)
        }
        ParsedQuery::Agg(_) => {
            Err(ParseError { msg: "expected a plain CQ, found an aggregate query".into(), at: 0 })
        }
    }
}

/// Parses a single aggregate query.
pub fn parse_aggregate_query(input: &str) -> Result<AggregateQuery, ParseError> {
    let mut c = Cursor::new(input)?;
    match parse_one(&mut c)? {
        ParsedQuery::Agg(q) => {
            if !c.done() {
                return c.err("trailing input after query");
            }
            Ok(q)
        }
        ParsedQuery::Cq(_) => {
            Err(ParseError { msg: "expected an aggregate query, found a plain CQ".into(), at: 0 })
        }
    }
}

/// Parses a sequence of queries (plain or aggregate), each terminated by
/// `.` (the final dot may be omitted).
pub fn parse_program(input: &str) -> Result<Vec<ParsedQuery>, ParseError> {
    let mut c = Cursor::new(input)?;
    let mut out = Vec::new();
    while !c.done() {
        out.push(parse_one(&mut c)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_query() {
        let q = parse_query("q(X) :- p(X,Y), t(X,Y,W).").unwrap();
        assert_eq!(q.head, vec![Term::var("X")]);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.to_string(), "q(X) :- p(X, Y), t(X, Y, W)");
    }

    #[test]
    fn parse_zero_ary_head() {
        let q = parse_query("q() :- p(X)").unwrap();
        assert!(q.head.is_empty());
    }

    #[test]
    fn parse_constants() {
        let q = parse_query("q(X) :- p(X, 3, 2.5, 'lit', abc)").unwrap();
        assert_eq!(q.body[0].args[1], Term::int(3));
        assert_eq!(q.body[0].args[2], Term::Const(Value::real(2.5)));
        assert_eq!(q.body[0].args[3], Term::Const(Value::str("lit")));
        assert_eq!(q.body[0].args[4], Term::Const(Value::str("abc")));
    }

    #[test]
    fn anonymous_vars_are_distinct() {
        let q = parse_query("q(X) :- p(X, _, _)").unwrap();
        let a = q.body[0].args[1].as_var().unwrap();
        let b = q.body[0].args[2].as_var().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn unsafe_query_rejected() {
        assert!(parse_query("q(Z) :- p(X,Y)").is_err());
    }

    #[test]
    fn duplicate_atoms_preserved() {
        // Multiset bodies: the parser must not dedup.
        let q = parse_query("q(X) :- s(X,Z), s(X,Z)").unwrap();
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn parse_aggregate() {
        let q = parse_aggregate_query("q(X, sum(Y)) :- p(X,Y)").unwrap();
        assert_eq!(q.agg, AggFn::Sum);
        assert_eq!(q.agg_var, Some(Var::new("Y")));
        assert_eq!(q.grouping, vec![Term::var("X")]);
    }

    #[test]
    fn parse_count_star() {
        let q = parse_aggregate_query("q(X, count(*)) :- p(X,Y)").unwrap();
        assert_eq!(q.agg, AggFn::CountStar);
        assert_eq!(q.agg_var, None);
        let q2 = parse_aggregate_query("q(X, count()) :- p(X,Y)").unwrap();
        assert_eq!(q2.agg, AggFn::CountStar);
    }

    #[test]
    fn aggregate_must_be_last() {
        assert!(parse_aggregate_query("q(sum(Y), X) :- p(X,Y)").is_err());
    }

    #[test]
    fn parse_program_multiple() {
        let items = parse_program("q1(X) :- p(X,Y). q2(X, max(Y)) :- p(X,Y).").unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], ParsedQuery::Cq(_)));
        assert!(matches!(items[1], ParsedQuery::Agg(_)));
    }

    #[test]
    fn ampersand_conjunction() {
        let q = parse_query("q(X) :- p(X,Y) & s(Y)").unwrap();
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn error_positions_reported() {
        let e = parse_query("q(X) : p(X)").unwrap_err();
        assert!(e.at < usize::MAX);
    }
}
