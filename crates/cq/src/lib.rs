//! # eqsql-cq — conjunctive-query intermediate representation
//!
//! This crate is the symbolic substrate of the `eqsql` workspace, which
//! implements Chirkova & Genesereth, *"Equivalence of SQL Queries in Presence
//! of Embedded Dependencies"* (PODS 2009).
//!
//! It provides:
//!
//! * interned [`Symbol`]s, [`Var`]iables, constant [`Value`]s and [`Term`]s;
//! * relational [`Atom`]s and safe conjunctive queries ([`CqQuery`], §2.1 of
//!   the paper) whose bodies are **multisets** of atoms — duplicate subgoals
//!   are semantically significant under bag and bag-set semantics;
//! * aggregate queries ([`AggregateQuery`], §2.5);
//! * the flat per-run [`arena`] — `u32`-interned terms and columnar
//!   predicate tables ([`TermArena`], [`ArenaPlan`]) — that the chase
//!   engine's hot path runs on, allocation-free per step;
//! * [`Subst`]itutions and homomorphism machinery: the planned,
//!   trail-based [`matcher`] (compiled [`matcher::MatchPlan`]s, delta-
//!   constrained search, parallel probe fan-out, and the naive
//!   [`matcher::reference`] oracle) with the classical free functions of
//!   [`hom`] — homomorphism search between conjunctions, containment
//!   mappings (Chandra–Merlin), exhaustive enumeration — as thin wrappers
//!   over it;
//! * query [`iso`]morphism — the bag-equivalence test of Chaudhuri & Vardi
//!   (Theorem 2.1 of the paper) — and canonical representations;
//! * a datalog-style [`parser`] and matching [`std::fmt::Display`]
//!   implementations, plus a reusable [`lex`]er shared with the dependency
//!   and SQL frontends.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod arena;
pub mod atom;
pub mod hom;
pub mod iso;
pub mod lex;
pub mod matcher;
pub mod parser;
pub mod query;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod value;

pub use aggregate::{AggFn, AggregateQuery};
pub use arena::{ArenaDelta, ArenaFrame, ArenaPlan, ColumnTable, EqOp, SeedMap, TermArena, TermId};
pub use atom::{Atom, Predicate};
pub use hom::{
    bucket_atoms, containment_mapping, enumerate_homomorphisms, extend_homomorphism,
    extend_homomorphism_with_buckets, find_homomorphism, find_homomorphism_where,
    is_containment_mapping, search_homomorphisms, Buckets, HomEnumeration,
};
pub use iso::{are_isomorphic, canonical_representation, find_isomorphism, is_isomorphism};
pub use matcher::{DeltaSlots, Match, MatchPlan, Seed, Target};
pub use parser::{parse_program, parse_query, ParseError};
pub use query::{CqQuery, VarSupply};
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::{Term, Var};
pub use value::{Value, R64};
