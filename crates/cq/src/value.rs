//! Constant values.
//!
//! Values appear both as constants inside queries/dependencies and as the
//! data stored in bag relations (crate `eqsql-relalg`). The paper aggregates
//! real numbers; we support 64-bit integers and reals (behind a total-order
//! wrapper) plus interned strings. [`Value::Labeled`] values are the
//! "fresh distinct constants" used by canonical databases (§2.1) and the
//! labelled nulls of the instance-level chase.

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` with total equality/ordering/hashing (`-0.0` is normalized to
/// `0.0`; `NaN` is rejected at construction).
#[derive(Copy, Clone, Debug)]
pub struct R64(f64);

impl R64 {
    /// Wraps `f`. Panics on NaN — NaN has no place in query answers.
    pub fn new(f: f64) -> R64 {
        assert!(!f.is_nan(), "NaN is not a valid eqsql value");
        if f == 0.0 {
            R64(0.0)
        } else {
            R64(f)
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for R64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for R64 {}

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for R64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for R64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A constant value.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Real number with total ordering.
    Real(R64),
    /// Interned string.
    Str(Symbol),
    /// A labelled constant: distinct from every other value, used for the
    /// fresh constants of canonical databases and for labelled nulls in the
    /// instance chase.
    Labeled(u64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::new(s))
    }

    /// Convenience constructor for reals.
    pub fn real(f: f64) -> Value {
        Value::Real(R64::new(f))
    }

    /// Is this a labelled (null-like) value?
    pub fn is_labeled(&self) -> bool {
        matches!(self, Value::Labeled(_))
    }

    /// Numeric view used by SUM/MIN/MAX aggregation; `None` for
    /// non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(r.get()),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Labeled(n) => write!(f, "@{n}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r64_normalizes_negative_zero() {
        assert_eq!(R64::new(-0.0), R64::new(0.0));
    }

    #[test]
    #[should_panic]
    fn r64_rejects_nan() {
        let _ = R64::new(f64::NAN);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Labeled(3).to_string(), "@3");
    }

    #[test]
    fn values_are_totally_ordered() {
        let mut v = vec![Value::str("x"), Value::Int(3), Value::real(1.5), Value::Labeled(0)];
        v.sort();
        // Just exercise: sorting must not panic and be stable under re-sort.
        let w = {
            let mut w = v.clone();
            w.sort();
            w
        };
        assert_eq!(v, w);
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::real(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("a").as_f64(), None);
    }
}
