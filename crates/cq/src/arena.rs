//! Flat per-run arena: `u32` term ids and columnar predicate tables.
//!
//! The boxed representation ([`Atom`] = `Vec<Term>`, [`Term`] = interned
//! [`crate::Symbol`]s behind an `RwLock`) is what the parser, the service
//! boundary and the differential oracles speak. It is also what made the
//! chase hot path allocator-bound: every candidate comparison chased a
//! `Vec` pointer and every `Symbol` ordering took an interner read lock.
//! This module is the flat alternative the optimized engines run on.
//!
//! ## Id spaces
//!
//! A [`TermArena`] owns two id spaces, both dense `u32`s:
//!
//! * **Term ids** ([`TermId`]): every distinct [`Term`] (variable or
//!   constant) is interned once, at arena-build time, into an id.
//!   Equality of ids is equality of terms, so searches compare integers
//!   and the `Symbol` interner (and its lock) is never consulted inside
//!   a search. Ids are *per-arena*: they mean nothing outside the run
//!   that made them.
//! * **Table ids**: every `(predicate, arity)` key is registered once
//!   into a [`ColumnTable`]. Plans resolve their steps to table ids at
//!   compile time, so the per-candidate path does no hashing at all.
//!
//! ## Columnar layout
//!
//! A [`ColumnTable`] stores its atoms **by argument position**: one
//! contiguous `Vec<TermId>` per column, plus an ascending list of live
//! row indices. A backtracking candidate scan therefore sweeps linear
//! integer arrays; killing a row (chase dedup) removes it from the live
//! list without moving cells, and an egd substitution rewrites cells in
//! place — rows never change position, so candidate order is stable.
//!
//! Rows are appended in the caller's first-occurrence order. The chase
//! engine appends its body slots in slot order, which makes per-table
//! ascending row order equal the boxed engine's ascending-slot bucket
//! order — the property that keeps the arena engine **step-identical**
//! to the boxed one (same first match, same firing sequence).
//!
//! ## Searching
//!
//! [`ArenaPlan`] mirrors [`crate::matcher::MatchPlan`] — dense variable
//! slots, flat ops, undo trail — but binds [`TermId`]s into a reusable
//! [`ArenaFrame`]. A frame is allocated once per dependency per run and
//! [`ArenaFrame::reset`] between searches, so a warm chase step performs
//! **zero heap allocations** (asserted by `tests/tests/alloc_regression.rs`).
//! Seeding (the conclusion-extension check of a tgd scan) goes through a
//! precompiled [`SeedMap`] — extension slot ← premise slot — instead of
//! a closure over a `Subst`.
//!
//! ## Boxed ↔ arena boundary contract
//!
//! The arena is a *run-local accelerator*, not a public wire format:
//!
//! * conversion **in** happens once per run ([`TermArena::intern`],
//!   [`ColumnTable`] fills) — after that, nothing inside a search
//!   touches a boxed value;
//! * conversion **out** happens only at observable boundaries: trace
//!   strings, materialized terminal queries, `Subst`s handed to custom
//!   admission predicates ([`ArenaPlan::bind_subst`]). Cache
//!   fingerprints, the persist wire format and the service layer keep
//!   consuming boxed [`crate::CqQuery`]s and never see an id;
//! * the naive oracles ([`crate::matcher::reference`], the reference
//!   chase drivers) stay entirely on the boxed representation, so the
//!   differential suites remain independent of this module.

use crate::atom::{Atom, Predicate};
use crate::subst::Subst;
use crate::term::{Term, Var};
use std::collections::HashMap;

/// A dense per-arena term id. Equal ids ⇔ equal terms (within one arena).
pub type TermId = u32;

/// One `(predicate, arity)` table in columnar layout. See the module docs.
pub struct ColumnTable {
    key: (Predicate, usize),
    /// One contiguous column per argument position; `cols[j][row]` is the
    /// `j`-th argument of `row`. Dead rows keep stale cells.
    cols: Vec<Vec<TermId>>,
    /// Live row indices, ascending — the candidate list searches sweep.
    rows: Vec<u32>,
}

impl ColumnTable {
    /// The `(predicate, arity)` key this table stores.
    pub fn key(&self) -> (Predicate, usize) {
        self.key
    }

    /// The live rows, ascending.
    pub fn live_rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty (no live rows)?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column for argument position `j`.
    pub fn col(&self, j: usize) -> &[TermId] {
        &self.cols[j]
    }

    /// The cell at (`row`, argument `j`).
    pub fn cell(&self, row: u32, j: usize) -> TermId {
        self.cols[j][row as usize]
    }
}

/// The flat per-run arena: term interner plus columnar tables. See the
/// module docs for the id spaces and the boundary contract.
#[derive(Default)]
pub struct TermArena {
    /// Id → term (terms are `Copy`; no boxing).
    terms: Vec<Term>,
    /// Term → id.
    ids: HashMap<Term, TermId>,
    /// Table id → columnar storage.
    tables: Vec<ColumnTable>,
    /// `(predicate, arity)` → table id.
    table_ids: HashMap<(Predicate, usize), u32>,
}

impl TermArena {
    /// An empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Interns a term, returning its id (stable for the arena's lifetime).
    pub fn intern(&mut self, t: Term) -> TermId {
        match self.ids.get(&t) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.terms.len()).expect("term id overflow");
                self.terms.push(t);
                self.ids.insert(t, id);
                id
            }
        }
    }

    /// The id of `t`, if it has been interned (never allocates or grows).
    pub fn lookup(&self, t: &Term) -> Option<TermId> {
        self.ids.get(t).copied()
    }

    /// The term behind an id.
    pub fn term(&self, id: TermId) -> Term {
        self.terms[id as usize]
    }

    /// Is the id a variable?
    pub fn is_var(&self, id: TermId) -> bool {
        self.terms[id as usize].is_var()
    }

    /// The table id for `key`, registering an empty table on first use.
    /// Register every key a run will touch up front (or at plan-compile
    /// time) so searches and fires never miss.
    pub fn table_id(&mut self, key: (Predicate, usize)) -> u32 {
        match self.table_ids.get(&key) {
            Some(&t) => t,
            None => {
                let t = u32::try_from(self.tables.len()).expect("table id overflow");
                self.tables.push(ColumnTable {
                    key,
                    cols: vec![Vec::new(); key.1],
                    rows: Vec::new(),
                });
                self.table_ids.insert(key, t);
                t
            }
        }
    }

    /// The table id for `key`, if registered (never registers).
    pub fn lookup_table(&self, key: &(Predicate, usize)) -> Option<u32> {
        self.table_ids.get(key).copied()
    }

    /// The table behind an id.
    pub fn table(&self, t: u32) -> &ColumnTable {
        &self.tables[t as usize]
    }

    /// Number of live rows under `key` (0 when unregistered) — the live
    /// cardinality statistic [`ArenaPlan::optimized_with_stats`] orders by.
    pub fn live_count(&self, key: &(Predicate, usize)) -> usize {
        self.lookup_table(key).map_or(0, |t| self.tables[t as usize].rows.len())
    }

    /// Appends a live row holding `args` to table `t`, returning its row
    /// index. Rows are append-only; per-table row order is the caller's
    /// append order.
    pub fn push_row(&mut self, t: u32, args: &[TermId]) -> u32 {
        let table = &mut self.tables[t as usize];
        debug_assert_eq!(args.len(), table.cols.len(), "arity mismatch on {:?}", table.key);
        let row = u32::try_from(table.cols.first().map_or(table.rows.len(), Vec::len))
            .expect("row overflow");
        for (col, &id) in table.cols.iter_mut().zip(args) {
            col.push(id);
        }
        table.rows.push(row);
        row
    }

    /// Removes `row` from table `t`'s live list (cells stay in place, so
    /// other rows keep their positions and candidate order is stable).
    pub fn kill_row(&mut self, t: u32, row: u32) {
        let table = &mut self.tables[t as usize];
        if let Ok(pos) = table.rows.binary_search(&row) {
            table.rows.remove(pos);
        }
    }

    /// Overwrites the cell at (`row`, argument `j`) of table `t` in place.
    pub fn set_cell(&mut self, t: u32, row: u32, j: usize, id: TermId) {
        self.tables[t as usize].cols[j][row as usize] = id;
    }

    /// Drops every row of every table, keeping the interned terms and the
    /// table registry (so compiled plans survive). The instance chase
    /// refills the arena from the database after each mutating step.
    pub fn clear_rows(&mut self) {
        for table in &mut self.tables {
            for col in &mut table.cols {
                col.clear();
            }
            table.rows.clear();
        }
    }

    /// Materializes a boxed atom from a row (boundary conversion only).
    pub fn row_atom(&self, t: u32, row: u32) -> Atom {
        let table = &self.tables[t as usize];
        Atom {
            pred: table.key.0,
            args: table.cols.iter().map(|col| self.term(col[row as usize])).collect(),
        }
    }
}

/// Delta candidates for [`ArenaPlan::search_delta`]: recently added or
/// rewritten rows, grouped by table, in touch order (duplicates allowed —
/// the pinned passes tolerate them, mirroring
/// [`crate::matcher::DeltaSlots`]).
#[derive(Default, Debug)]
pub struct ArenaDelta {
    by_table: HashMap<u32, Vec<u32>>,
}

impl ArenaDelta {
    /// An empty delta.
    pub fn new() -> ArenaDelta {
        ArenaDelta::default()
    }

    /// Records `row` of table `t` as part of the delta.
    pub fn push(&mut self, t: u32, row: u32) {
        self.by_table.entry(t).or_default().push(row);
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.by_table.values().all(|v| v.is_empty())
    }

    fn get(&self, t: u32) -> Option<&[u32]> {
        self.by_table.get(&t).map(|v| v.as_slice())
    }
}

/// One argument op of an [`ArenaPlan`] step.
#[derive(Copy, Clone, Debug)]
enum AOp {
    /// The cell must equal this interned term.
    Const(TermId),
    /// Bind (first occurrence) or compare (bound) the dense slot.
    Slot(u32),
}

/// One atom of the compiled plan: its table plus an ops range into the
/// plan's flat arena.
#[derive(Debug)]
struct AStep {
    table: u32,
    ops_start: u32,
    arity: u32,
}

/// How an egd equality side (or any single term) reads off a premise
/// match: a constant, a premise slot, or a variable the premise does not
/// bind (maps to itself, like [`Subst::apply_term`]).
#[derive(Copy, Clone, Debug)]
pub enum EqOp {
    /// An interned constant (or pre-resolved term).
    Const(TermId),
    /// Read the premise frame's slot.
    Slot(u32),
    /// A variable outside the plan: its image is itself.
    Free(Var),
}

impl EqOp {
    /// Resolves the op against a complete premise match (`slots` from the
    /// emit callback) to a boxed term — a boundary conversion.
    pub fn resolve(&self, arena: &TermArena, slots: &[TermId]) -> Term {
        match self {
            EqOp::Const(id) => arena.term(*id),
            EqOp::Slot(s) => arena.term(slots[*s as usize]),
            EqOp::Free(v) => Term::Var(*v),
        }
    }
}

/// A seed assignment `dst slot ← src slot`, precompiled between two plans
/// sharing variables (tgd premise → conclusion). Replaces the boxed
/// engine's per-check `Seed::Fn` closure with two integer reads.
pub type SeedMap = Vec<(u32, u32)>;

/// The compiled arena search plan: [`crate::matcher::MatchPlan`]'s twin
/// over [`TermId`] columns. Variables are dense slots in first-occurrence
/// order along the plan; see the module docs.
pub struct ArenaPlan {
    steps: Vec<AStep>,
    ops: Vec<AOp>,
    /// Slot → source variable.
    vars: Vec<Var>,
}

impl ArenaPlan {
    /// Compiles `src` keeping the original atom order (emission order is
    /// identical to the boxed reference-order plan — required where "first
    /// match" is load-bearing, i.e. every premise plan).
    pub fn new(src: &[Atom], arena: &mut TermArena) -> ArenaPlan {
        ArenaPlan::compile(src, (0..src.len()).collect(), arena)
    }

    /// Compiles `src` greedily reordered by static selectivity, exactly
    /// like [`crate::matcher::MatchPlan::optimized`]: constants and
    /// already-bound slots first, ties toward fewer fresh variables, then
    /// the original position. Existence-only searches only.
    pub fn optimized(src: &[Atom], bound: &[Var], arena: &mut TermArena) -> ArenaPlan {
        ArenaPlan::compile(src, optimized_order(src, bound, |_| 0), arena)
    }

    /// The table id of step `i` — exposed for tests and benches that
    /// inspect plan shape.
    pub fn step_table(&self, i: usize) -> u32 {
        self.steps[i].table
    }

    /// [`ArenaPlan::optimized`] with live cardinality statistics
    /// (Selinger-lite): among equally-connected atoms, scan the smaller
    /// table first. Cardinalities are read off the arena's live rows once,
    /// at compile time. Existence-only searches only (the emitted match
    /// *set* is order-independent).
    pub fn optimized_with_stats(src: &[Atom], bound: &[Var], arena: &mut TermArena) -> ArenaPlan {
        let cards: Vec<usize> = src.iter().map(|a| arena.live_count(&a.key())).collect();
        ArenaPlan::compile(src, optimized_order(src, bound, |i| cards[i]), arena)
    }

    fn compile(src: &[Atom], order: Vec<usize>, arena: &mut TermArena) -> ArenaPlan {
        let mut vars: Vec<Var> = Vec::new();
        let mut steps = Vec::with_capacity(order.len());
        let mut ops: Vec<AOp> = Vec::with_capacity(src.iter().map(Atom::arity).sum());
        for &i in &order {
            let atom = &src[i];
            let ops_start = u32::try_from(ops.len()).expect("ops overflow");
            for t in &atom.args {
                ops.push(match t {
                    Term::Const(_) => AOp::Const(arena.intern(*t)),
                    Term::Var(v) => {
                        let slot = match vars.iter().position(|w| w == v) {
                            Some(s) => s,
                            None => {
                                vars.push(*v);
                                vars.len() - 1
                            }
                        };
                        AOp::Slot(u32::try_from(slot).expect("slot overflow"))
                    }
                });
            }
            steps.push(AStep {
                table: arena.table_id(atom.key()),
                ops_start,
                arity: atom.arity() as u32,
            });
        }
        ArenaPlan { steps, ops, vars }
    }

    /// Number of source atoms.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the source conjunction empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of dense variable slots.
    pub fn slot_count(&self) -> usize {
        self.vars.len()
    }

    /// The slot of `v`, if `v` occurs in the source conjunction.
    pub fn slot(&self, v: Var) -> Option<u32> {
        self.vars.iter().position(|w| *w == v).map(|s| s as u32)
    }

    /// The source variables in slot order.
    pub fn slot_vars(&self) -> &[Var] {
        &self.vars
    }

    /// Compiles the seed map `self slot ← src slot` for every variable the
    /// two plans share (tgd conclusion ← premise).
    pub fn seed_map_from(&self, src: &ArenaPlan) -> SeedMap {
        let mut map = SeedMap::new();
        for (slot, v) in self.vars.iter().enumerate() {
            if let Some(s) = src.slot(*v) {
                map.push((slot as u32, s));
            }
        }
        map
    }

    /// Compiles `t` into an [`EqOp`] against this plan (egd equality
    /// sides; also conclusion-template arguments).
    pub fn eq_op(&self, t: &Term, arena: &mut TermArena) -> EqOp {
        match t {
            Term::Const(_) => EqOp::Const(arena.intern(*t)),
            Term::Var(v) => match self.slot(*v) {
                Some(s) => EqOp::Slot(s),
                None => EqOp::Free(*v),
            },
        }
    }

    /// Writes the match's bindings into `out` (slot variable → term) — a
    /// boundary conversion for custom admission predicates and fires.
    pub fn bind_subst(&self, arena: &TermArena, slots: &[TermId], out: &mut Subst) {
        for (slot, v) in self.vars.iter().enumerate() {
            out.set(*v, arena.term(slots[slot]));
        }
    }

    fn step_ops(&self, step: &AStep) -> &[AOp] {
        let start = step.ops_start as usize;
        &self.ops[start..start + step.arity as usize]
    }

    /// Enumerates matches against the arena, extending whatever seeds the
    /// caller planted in `frame` (which must be [`ArenaFrame::reset`] for
    /// this plan first). `emit` observes the complete slot array; return
    /// `false` to stop. Returns `false` iff `emit` stopped the search.
    /// Allocation-free once the frame is warm.
    pub fn search(
        &self,
        arena: &TermArena,
        frame: &mut ArenaFrame,
        emit: &mut dyn FnMut(&[TermId]) -> bool,
    ) -> bool {
        self.run_step(arena, frame, None, usize::MAX, 0, emit)
    }

    /// [`ArenaPlan::search`] restricted to matches using at least one
    /// delta row: one pinned pass per plan step, mirroring
    /// [`crate::matcher::MatchPlan::search_delta`] (matches touching
    /// several delta rows may be emitted once per pass).
    pub fn search_delta(
        &self,
        arena: &TermArena,
        delta: &ArenaDelta,
        frame: &mut ArenaFrame,
        emit: &mut dyn FnMut(&[TermId]) -> bool,
    ) -> bool {
        for pin in 0..self.steps.len() {
            if delta.get(self.steps[pin].table).is_none_or(|c| c.is_empty()) {
                continue; // nothing in the delta can satisfy this step
            }
            if !self.run_step(arena, frame, Some(delta), pin, 0, emit) {
                return false;
            }
        }
        true
    }

    /// Is there any match extending the frame's seeds? Allocation-free.
    pub fn has_match(&self, arena: &TermArena, frame: &mut ArenaFrame) -> bool {
        let mut hit = false;
        self.search(arena, frame, &mut |_| {
            hit = true;
            false
        });
        hit
    }

    fn run_step(
        &self,
        arena: &TermArena,
        frame: &mut ArenaFrame,
        delta: Option<&ArenaDelta>,
        pin: usize,
        depth: usize,
        emit: &mut dyn FnMut(&[TermId]) -> bool,
    ) -> bool {
        if depth == self.steps.len() {
            return emit(&frame.slots);
        }
        let step = &self.steps[depth];
        let table = arena.table(step.table);
        let rows: &[u32] = if depth == pin {
            delta.and_then(|d| d.get(step.table)).unwrap_or(&[])
        } else {
            table.live_rows()
        };
        let ops = self.step_ops(step);
        'cand: for &row in rows {
            let mark = frame.trail.len();
            for (j, op) in ops.iter().enumerate() {
                let cell = table.cols[j][row as usize];
                match op {
                    AOp::Const(c) => {
                        if cell != *c {
                            frame.undo_to(mark);
                            continue 'cand;
                        }
                    }
                    AOp::Slot(s) => {
                        let s = *s as usize;
                        if frame.bound[s] {
                            if frame.slots[s] != cell {
                                frame.undo_to(mark);
                                continue 'cand;
                            }
                        } else {
                            frame.slots[s] = cell;
                            frame.bound[s] = true;
                            frame.trail.push(s as u32);
                        }
                    }
                }
            }
            let keep_going = self.run_step(arena, frame, delta, pin, depth + 1, emit);
            frame.undo_to(mark);
            if !keep_going {
                return false;
            }
        }
        true
    }
}

/// The greedy atom ordering shared by [`ArenaPlan::optimized`] and
/// [`ArenaPlan::optimized_with_stats`]: maximize `pinned*8 - fresh` (the
/// boxed heuristic, so the two representations pick identical orders when
/// `card` is constant), break ties toward the smaller live table (`card`
/// maps a source atom index to its table's cardinality), then the
/// original position.
fn optimized_order(src: &[Atom], bound: &[Var], card: impl Fn(usize) -> usize) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::with_capacity(src.len());
    let mut placed = vec![false; src.len()];
    let mut known: std::collections::HashSet<Var> = bound.iter().copied().collect();
    for _ in 0..src.len() {
        let mut best: Option<(i64, usize, usize)> = None; // (score, card, idx)
        for (i, atom) in src.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let mut pinned = 0i64;
            let mut fresh = 0i64;
            let mut seen_here: Vec<Var> = Vec::new();
            for t in &atom.args {
                match t {
                    Term::Const(_) => pinned += 1,
                    Term::Var(v) => {
                        if known.contains(v) || seen_here.contains(v) {
                            pinned += 1;
                        } else {
                            fresh += 1;
                            seen_here.push(*v);
                        }
                    }
                }
            }
            let score = pinned * 8 - fresh;
            let c = card(i);
            // Strictly better score, or equal score with a strictly
            // smaller candidate table; ascending scan keeps the lowest
            // original index on full ties.
            if best.map_or(true, |(s, bc, _)| score > s || (score == s && c < bc)) {
                best = Some((score, c, i));
            }
        }
        let (_, _, i) = best.expect("unplaced atom remains");
        placed[i] = true;
        known.extend(src[i].vars());
        order.push(i);
    }
    order
}

/// The reusable arena search state: dense slot array plus undo trail.
/// Allocate once per plan per run; [`ArenaFrame::reset`] (cheap, no
/// allocation once warm) between searches, then plant seeds with
/// [`ArenaFrame::seed`].
#[derive(Default)]
pub struct ArenaFrame {
    /// Slot values; meaningful only where `bound`.
    slots: Vec<TermId>,
    /// Which slots hold a binding (seeded or trail-recorded).
    bound: Vec<bool>,
    /// Slots bound since the search started, in binding order.
    trail: Vec<u32>,
}

impl ArenaFrame {
    /// An empty frame (sized lazily by [`ArenaFrame::reset`]).
    pub fn new() -> ArenaFrame {
        ArenaFrame::default()
    }

    /// A frame pre-sized for `plan`.
    pub fn for_plan(plan: &ArenaPlan) -> ArenaFrame {
        let mut f = ArenaFrame::new();
        f.reset(plan.slot_count());
        f
    }

    /// Clears every binding and sizes the frame for a plan with `slots`
    /// dense slots. Allocation-free once the frame has been this large.
    pub fn reset(&mut self, slots: usize) {
        self.slots.resize(slots, 0);
        self.bound.clear();
        self.bound.resize(slots, false);
        self.trail.clear();
    }

    /// Seeds slot `s` with `id`. Seeded slots survive backtracking for
    /// the whole search (they are never trailed).
    pub fn seed(&mut self, s: u32, id: TermId) {
        self.slots[s as usize] = id;
        self.bound[s as usize] = true;
    }

    /// Seeds this frame from a source match via a precompiled [`SeedMap`]
    /// (`self slot ← src_slots[src slot]`).
    pub fn seed_from(&mut self, map: &SeedMap, src_slots: &[TermId]) {
        for &(dst, src) in map {
            self.seed(dst, src_slots[src as usize]);
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let s = self.trail.pop().expect("trail underflow") as usize;
            self.bound[s] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{bucket_atoms, MatchPlan, Seed, Target};
    use crate::parser::parse_query;

    fn body(s: &str) -> Vec<Atom> {
        parse_query(s).unwrap().body
    }

    /// Loads a boxed body into a fresh arena, rows in slot order.
    fn load(arena: &mut TermArena, atoms: &[Atom]) {
        let mut scratch = Vec::new();
        for a in atoms {
            let t = arena.table_id(a.key());
            scratch.clear();
            for arg in &a.args {
                scratch.push(arena.intern(*arg));
            }
            arena.push_row(t, &scratch);
        }
    }

    fn all_matches(src: &[Atom], dst: &[Atom]) -> Vec<Vec<Term>> {
        let mut arena = TermArena::new();
        load(&mut arena, dst);
        let plan = ArenaPlan::new(src, &mut arena);
        let mut frame = ArenaFrame::for_plan(&plan);
        let mut out = Vec::new();
        plan.search(&arena, &mut frame, &mut |slots| {
            out.push(slots.iter().map(|&id| arena.term(id)).collect());
            true
        });
        out
    }

    #[test]
    fn emission_order_matches_boxed_plan() {
        let src = body("q() :- p(X,Y), p(Y,Z)");
        let dst = body("q() :- p(1,2), p(2,3), p(2,2)");
        let arena_runs = all_matches(&src, &dst);
        let plan = MatchPlan::new(&src);
        let buckets = bucket_atoms(&dst);
        let mut boxed_runs: Vec<Vec<Term>> = Vec::new();
        plan.search(Target::new(&dst, &buckets), &Seed::Empty, &mut |m| {
            boxed_runs.push(m.slots().to_vec());
            true
        });
        assert_eq!(arena_runs, boxed_runs);
    }

    #[test]
    fn constants_and_repeated_vars_filter() {
        let src = body("q() :- p(X,X), r(X,3)");
        let dst = body("q() :- p(1,2), p(2,2), r(2,3), r(1,3)");
        let ms = all_matches(&src, &dst);
        assert_eq!(ms, vec![vec![Term::int(2)]]);
    }

    #[test]
    fn seeded_search_pins_slots() {
        let src = body("q() :- e(X,Y)");
        let dst = body("q() :- e(1,2), e(2,3)");
        let mut arena = TermArena::new();
        load(&mut arena, &dst);
        let plan = ArenaPlan::new(&src, &mut arena);
        let x = plan.slot(Var::new("X")).unwrap();
        let two = arena.intern(Term::int(2));
        let mut frame = ArenaFrame::for_plan(&plan);
        frame.reset(plan.slot_count());
        frame.seed(x, two);
        let mut hits = Vec::new();
        plan.search(&arena, &mut frame, &mut |slots| {
            hits.push(slots.to_vec());
            true
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(arena.term(hits[0][plan.slot(Var::new("Y")).unwrap() as usize]), Term::int(3));
    }

    #[test]
    fn delta_search_requires_a_delta_row() {
        let src = body("q() :- e(X,Y)");
        let dst = body("q() :- e(1,2), e(2,3), e(3,4)");
        let mut arena = TermArena::new();
        load(&mut arena, &dst);
        let plan = ArenaPlan::new(&src, &mut arena);
        let t = arena.lookup_table(&dst[0].key()).unwrap();
        let mut delta = ArenaDelta::new();
        delta.push(t, 2);
        let mut frame = ArenaFrame::for_plan(&plan);
        let mut hits = Vec::new();
        plan.search_delta(&arena, &delta, &mut frame, &mut |slots| {
            hits.push(slots.to_vec());
            true
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(arena.term(hits[0][0]), Term::int(3));
    }

    #[test]
    fn kill_and_rewrite_preserve_row_order() {
        let dst = body("q() :- e(1,2), e(2,3), e(3,4)");
        let mut arena = TermArena::new();
        load(&mut arena, &dst);
        let t = arena.lookup_table(&dst[0].key()).unwrap();
        arena.kill_row(t, 1);
        assert_eq!(arena.table(t).live_rows(), &[0, 2]);
        // Rewrite cell (2, 0): 3 → 9; row positions unchanged.
        let nine = arena.intern(Term::int(9));
        arena.set_cell(t, 2, 0, nine);
        assert_eq!(arena.row_atom(t, 2), body("q() :- e(9,4)")[0]);
        let src = body("q() :- e(X,Y)");
        let plan = ArenaPlan::new(&src, &mut arena);
        let mut frame = ArenaFrame::for_plan(&plan);
        let mut firsts = Vec::new();
        plan.search(&arena, &mut frame, &mut |slots| {
            firsts.push(arena.term(slots[0]));
            true
        });
        assert_eq!(firsts, vec![Term::int(1), Term::int(9)]);
    }

    #[test]
    fn stats_ordering_prefers_small_tables() {
        // Both atoms all-fresh: static heuristic ties, cardinality breaks.
        let src = body("q() :- big(X,Y), small(Y,Z)");
        let mut arena = TermArena::new();
        let big: Vec<Atom> =
            (0..10).map(|i| body(&format!("q() :- big({i},{i})")).remove(0)).collect();
        let small = body("q() :- small(7,8)");
        load(&mut arena, &big);
        load(&mut arena, &small);
        let plan = ArenaPlan::optimized_with_stats(&src, &[], &mut arena);
        // First step scans the small table.
        assert_eq!(plan.step_table(0), arena.lookup_table(&small[0].key()).unwrap());
        // And the match set is unchanged vs the reference-order plan.
        let reference = ArenaPlan::new(&src, &mut arena);
        let count = |p: &ArenaPlan, a: &TermArena| {
            let mut f = ArenaFrame::for_plan(p);
            let mut n = 0;
            p.search(a, &mut f, &mut |_| {
                n += 1;
                true
            });
            n
        };
        assert_eq!(count(&plan, &arena), count(&reference, &arena));
    }

    #[test]
    fn clear_rows_keeps_registry_and_terms() {
        let dst = body("q() :- e(1,2)");
        let mut arena = TermArena::new();
        load(&mut arena, &dst);
        let t = arena.lookup_table(&dst[0].key()).unwrap();
        let one = arena.lookup(&Term::int(1)).unwrap();
        arena.clear_rows();
        assert!(arena.table(t).is_empty());
        assert_eq!(arena.lookup(&Term::int(1)), Some(one));
        assert_eq!(arena.lookup_table(&dst[0].key()), Some(t));
    }
}
