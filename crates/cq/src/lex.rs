//! A small lexer shared by the query, dependency and SQL-frontend parsers.
//!
//! Conventions: identifiers starting with an uppercase letter (or `_`) are
//! variables, lowercase identifiers are predicate/function names, numeric
//! literals are integer or real constants, single-quoted strings are string
//! constants. `%` starts a line comment.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier (predicate, variable, keyword — disambiguated by parsers).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Single-quoted string literal (content, unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Turnstile,
    /// `<-`
    LArrow,
    /// `->`
    RArrow,
    /// `&`
    Amp,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Turnstile => f.write_str(":-"),
            Token::LArrow => f.write_str("<-"),
            Token::RArrow => f.write_str("->"),
            Token::Amp => f.write_str("&"),
            Token::Eq => f.write_str("="),
            Token::Star => f.write_str("*"),
            Token::Semi => f.write_str(";"),
        }
    }
}

/// A token with its byte offset in the input (for error reporting).
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset where the token starts.
    pub at: usize,
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// Byte offset of the offending character.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned { tok: Token::LParen, at: i });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Token::RParen, at: i });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Token::Comma, at: i });
                i += 1;
            }
            '&' => {
                out.push(Spanned { tok: Token::Amp, at: i });
                i += 1;
            }
            '=' => {
                out.push(Spanned { tok: Token::Eq, at: i });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Token::Star, at: i });
                i += 1;
            }
            ';' => {
                out.push(Spanned { tok: Token::Semi, at: i });
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Spanned { tok: Token::Turnstile, at: i });
                    i += 2;
                } else {
                    return Err(LexError { msg: "expected ':-'".into(), at: i });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    out.push(Spanned { tok: Token::LArrow, at: i });
                    i += 2;
                } else {
                    return Err(LexError { msg: "expected '<-'".into(), at: i });
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned { tok: Token::RArrow, at: i });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (tok, next) = lex_number(input, i)?;
                    out.push(Spanned { tok, at: i });
                    i = next;
                } else {
                    return Err(LexError { msg: "expected '->' or number".into(), at: i });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { msg: "unterminated string".into(), at: i });
                }
                out.push(Spanned { tok: Token::Str(input[start..j].to_string()), at: i });
                i = j + 1;
            }
            '.' => {
                out.push(Spanned { tok: Token::Dot, at: i });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                out.push(Spanned { tok, at: i });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Spanned { tok: Token::Ident(input[start..j].to_string()), at: start });
                i = j;
            }
            other => {
                return Err(LexError { msg: format!("unexpected character '{other}'"), at: i });
            }
        }
    }
    Ok(out)
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut j = start;
    if bytes[j] == b'-' {
        j += 1;
    }
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    let mut is_real = false;
    if j + 1 < bytes.len() && bytes[j] == b'.' && bytes[j + 1].is_ascii_digit() {
        is_real = true;
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    let text = &input[start..j];
    let tok = if is_real {
        Token::Real(
            text.parse()
                .map_err(|_| LexError { msg: format!("bad real literal '{text}'"), at: start })?,
        )
    } else {
        Token::Int(
            text.parse().map_err(|_| LexError {
                msg: format!("bad integer literal '{text}'"),
                at: start,
            })?,
        )
    };
    Ok((tok, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_query() {
        assert_eq!(
            toks("q(X) :- p(X, 3)."),
            vec![
                Token::Ident("q".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::RParen,
                Token::Turnstile,
                Token::Ident("p".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::Comma,
                Token::Int(3),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn lex_dependency_arrow_and_eq() {
        assert_eq!(
            toks("p(X,Y) & p(X,Z) -> Y = Z"),
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::Comma,
                Token::Ident("Y".into()),
                Token::RParen,
                Token::Amp,
                Token::Ident("p".into()),
                Token::LParen,
                Token::Ident("X".into()),
                Token::Comma,
                Token::Ident("Z".into()),
                Token::RParen,
                Token::RArrow,
                Token::Ident("Y".into()),
                Token::Eq,
                Token::Ident("Z".into()),
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("1 -2 3.5 -4.25"),
            vec![Token::Int(1), Token::Int(-2), Token::Real(3.5), Token::Real(-4.25),]
        );
    }

    #[test]
    fn lex_strings_and_comments() {
        assert_eq!(
            toks("p('ab c') % trailing comment\nq"),
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Str("ab c".into()),
                Token::RParen,
                Token::Ident("q".into()),
            ]
        );
    }

    #[test]
    fn lex_errors_have_positions() {
        let e = lex("p(#)").unwrap_err();
        assert_eq!(e.at, 2);
        assert!(lex("'open").is_err());
    }
}
