//! Query isomorphism and canonical representations.
//!
//! Theorem 2.1 of the paper (due to Chaudhuri & Vardi \[4\]):
//!
//! 1. `Q ≡_B Q'` iff `Q` and `Q'` are **isomorphic** — there is a bijective
//!    variable renaming carrying the head of `Q` onto the head of `Q'` and
//!    the body of `Q` onto the body of `Q'` *as multisets of atoms*;
//! 2. `Q ≡_BS Q'` iff their canonical representations (duplicate atoms
//!    removed) are isomorphic.

use crate::atom::Atom;
use crate::query::CqQuery;
use crate::term::Var;
use std::collections::HashMap;

/// Are `q1` and `q2` isomorphic (same query up to bijective variable
/// renaming, bodies compared as **multisets**)? This is the bag-equivalence
/// test of Theorem 2.1(1).
pub fn are_isomorphic(q1: &CqQuery, q2: &CqQuery) -> bool {
    find_isomorphism(q1, q2).is_some()
}

/// Like [`are_isomorphic`], but returns the witnessing bijection as a map
/// from `q1`'s variables onto `q2`'s variables. The chase-result cache uses
/// this to replay a cached terminal query for an α-equivalent probe.
///
/// The returned map is total on `q1.all_vars()` and injective; its image is
/// exactly `q2.all_vars()`.
///
/// The multiset matching itself runs on the planned, trail-based search of
/// [`crate::matcher`] ([`crate::matcher::find_bijection`]): the body atoms
/// are compiled into a reference-order `MatchPlan` (the O(n) compile wins
/// on the small bodies this runs against) and matched injectively under a
/// bijective variable pairing. Only the cheap shape rejects live here.
pub fn find_isomorphism(q1: &CqQuery, q2: &CqQuery) -> Option<HashMap<Var, Var>> {
    if q1.head.len() != q2.head.len() || q1.body.len() != q2.body.len() {
        return None;
    }
    // Quick reject: per-predicate atom counts must agree.
    let mut counts: HashMap<_, i64> = HashMap::new();
    for a in &q1.body {
        *counts.entry(a.key()).or_default() += 1;
    }
    for a in &q2.body {
        *counts.entry(a.key()).or_default() -= 1;
    }
    if counts.values().any(|&c| c != 0) {
        return None;
    }
    crate::matcher::find_bijection(&q1.body, &q1.head, &q2.body, &q2.head)
}

/// Checks that `map` really is an isomorphism witness from `q1` onto `q2`:
/// total on `q1`'s variables, injective, image inside `q2`'s variables, and
/// applying it carries `q1`'s head onto `q2`'s head position by position
/// and `q1`'s body onto `q2`'s body as a multiset. The certificate-replay
/// counterpart of [`find_isomorphism`] — together with the size check this
/// implies the map is a genuine bijection between the variable sets.
pub fn is_isomorphism(q1: &CqQuery, q2: &CqQuery, map: &HashMap<Var, Var>) -> bool {
    let vars1 = q1.all_vars();
    if map.len() != vars1.len() || vars1.iter().any(|v| !map.contains_key(v)) {
        return false;
    }
    let image: std::collections::HashSet<Var> = map.values().copied().collect();
    let vars2: std::collections::HashSet<Var> = q2.all_vars().into_iter().collect();
    if image.len() != map.len() || image != vars2 {
        return false;
    }
    let s =
        crate::subst::Subst::from_pairs(map.iter().map(|(v, w)| (*v, crate::term::Term::Var(*w))));
    let mapped = q1.apply(&s);
    if mapped.head != q2.head || mapped.body.len() != q2.body.len() {
        return false;
    }
    // Multiset equality of the bodies.
    let mut remaining: Vec<&Atom> = q2.body.iter().collect();
    for a in &mapped.body {
        match remaining.iter().position(|b| *b == a) {
            Some(i) => {
                remaining.swap_remove(i);
            }
            None => return false,
        }
    }
    true
}

/// The canonical representation `Q_c` of `Q`: all duplicate body atoms
/// removed (first occurrences kept, in order). See §2.3 of the paper.
pub fn canonical_representation(q: &CqQuery) -> CqQuery {
    let mut seen = std::collections::HashSet::new();
    let body: Vec<Atom> = q.body.iter().filter(|a| seen.insert((*a).clone())).cloned().collect();
    CqQuery { name: q.name, head: q.head.clone(), body }
}

/// Removes duplicates only of atoms whose predicate satisfies `is_set`.
/// This is the normalization of Theorem 4.2: under bag semantics, duplicate
/// subgoals may be dropped exactly when their relations are set-valued on
/// every instance of the schema.
pub fn dedup_set_valued(q: &CqQuery, is_set: impl Fn(crate::atom::Predicate) -> bool) -> CqQuery {
    let mut seen = std::collections::HashSet::new();
    let body: Vec<Atom> = q
        .body
        .iter()
        .filter(|a| if is_set(a.pred) { seen.insert((*a).clone()) } else { true })
        .cloned()
        .collect();
    CqQuery { name: q.name, head: q.head.clone(), body }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Predicate;
    use crate::parser::parse_query;
    use crate::term::Term;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn renamed_queries_are_isomorphic() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        let b = q("q(A) :- p(A,B), s(B,C)");
        assert!(are_isomorphic(&a, &b));
        assert!(are_isomorphic(&b, &a));
    }

    #[test]
    fn atom_order_does_not_matter() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        let b = q("q(X) :- s(Y,Z), p(X,Y)");
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn duplicate_counts_matter() {
        // Bag equivalence distinguishes duplicate subgoals (Thm 2.1(1)).
        let a = q("q(X) :- p(X,Y)");
        let b = q("q(X) :- p(X,Y), p(X,Y)");
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn collapse_is_not_isomorphism() {
        let a = q("q(X) :- p(X,Y), p(Y,X)");
        let b = q("q(X) :- p(X,X), p(X,X)");
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn head_must_correspond() {
        let a = q("q(X) :- p(X,Y)");
        let b = q("q(Y) :- p(X,Y)");
        // In b, the head variable is the second argument of p: no bijection
        // can carry a's head onto b's head while matching bodies.
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn constants_must_agree() {
        let a = q("q(X) :- p(X, 3)");
        let b = q("q(X) :- p(X, 4)");
        assert!(!are_isomorphic(&a, &b));
        let c = q("q(A) :- p(A, 3)");
        assert!(are_isomorphic(&a, &c));
    }

    #[test]
    fn canonical_representation_dedups() {
        let a = q("q(X) :- p(X,Y), p(X,Y), s(X)");
        let c = canonical_representation(&a);
        assert_eq!(c.body.len(), 2);
        // And the canonical representations of a and its dedup are iso.
        assert!(are_isomorphic(&c, &q("q(X) :- p(X,Y), s(X)")));
    }

    #[test]
    fn dedup_set_valued_is_selective() {
        // Example 4.9 flavour: duplicates of the set-valued s may go,
        // duplicates of the bag-valued r must stay.
        let a = q("q(X) :- s(X,Z), s(X,Z), r(X), r(X)");
        let s_pred = Predicate::new("s");
        let d = dedup_set_valued(&a, |p| p == s_pred);
        assert_eq!(d.body.len(), 3);
        assert_eq!(d.count_pred(Predicate::new("r")), 2);
        assert_eq!(d.count_pred(s_pred), 1);
    }

    #[test]
    fn find_isomorphism_returns_total_bijection() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        let b = q("q(A) :- s(B,C), p(A,B)");
        let m = find_isomorphism(&a, &b).expect("isomorphic");
        // Total on a's variables, image is exactly b's variables.
        let image: std::collections::HashSet<_> = m.values().copied().collect();
        assert_eq!(m.len(), a.all_vars().len());
        assert_eq!(image, b.all_vars().into_iter().collect());
        // The map really carries a onto b.
        let s = crate::subst::Subst::from_pairs(m.iter().map(|(v, w)| (*v, Term::Var(*w))));
        assert!(are_isomorphic(&a.apply(&s), &b));
        assert!(find_isomorphism(&a, &q("q(X) :- p(X,Y), p(Y,Z)")).is_none());
    }

    #[test]
    fn isomorphism_witness_replays() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        let b = q("q(A) :- s(B,C), p(A,B)");
        let m = find_isomorphism(&a, &b).unwrap();
        assert!(is_isomorphism(&a, &b, &m));
        // Swapping two images breaks the witness.
        let mut bad = m.clone();
        let keys: Vec<Var> = bad.keys().copied().collect();
        let (v0, v1) = (keys[0], keys[1]);
        let (w0, w1) = (bad[&v0], bad[&v1]);
        bad.insert(v0, w1);
        bad.insert(v1, w0);
        assert!(!is_isomorphism(&a, &b, &bad));
        // A partial map is rejected outright.
        let mut partial = m;
        let some_key = *partial.keys().next().unwrap();
        partial.remove(&some_key);
        assert!(!is_isomorphism(&a, &b, &partial));
    }

    #[test]
    fn isomorphism_is_an_equivalence_on_samples() {
        let qs = [
            q("q(X) :- p(X,Y), s(Y,Z)"),
            q("q(A) :- s(B,C), p(A,B)"),
            q("q(X) :- p(X,Y), s(Y,Z), s(Y,Z)"),
        ];
        // reflexive
        for x in &qs {
            assert!(are_isomorphic(x, x));
        }
        // symmetric on the pair that is iso
        assert!(are_isomorphic(&qs[0], &qs[1]) && are_isomorphic(&qs[1], &qs[0]));
        // qs[2] differs from both
        assert!(!are_isomorphic(&qs[0], &qs[2]));
    }
}
