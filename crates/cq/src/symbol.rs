//! A process-wide string interner.
//!
//! Symbols are cheap to copy and compare; the backing strings live for the
//! lifetime of the process (they are leaked on first interning), which keeps
//! `as_str` allocation-free at use sites. Symbol sets in this workspace are
//! tiny (predicate and variable names), so the leak is intentional and
//! bounded.
//!
//! The id→string table sits behind an `RwLock`: `as_str` — which the chase
//! hits on every `Symbol` comparison during sorting and canonicalization —
//! takes only a read lock, so concurrent readers never serialize against
//! each other. Interning (the rare write path) takes the dedup `Mutex` and
//! then briefly the table's write lock.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, RwLock};

#[derive(Default)]
struct Interner {
    /// Dedup map, guarding the write path only.
    map: Mutex<HashMap<&'static str, u32>>,
    /// id → string; reads vastly outnumber the append-only writes.
    table: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static I: OnceLock<Interner> = OnceLock::new();
    I.get_or_init(Interner::default)
}

/// An interned string. Equality and hashing are O(1); ordering is
/// lexicographic on the underlying string so that sorted output is
/// deterministic across runs.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn new(s: &str) -> Symbol {
        let i = interner();
        let mut map = i.map.lock().expect("interner poisoned");
        if let Some(&id) = map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut table = i.table.write().expect("interner poisoned");
        let id = u32::try_from(table.len()).expect("interner overflow");
        table.push(leaked);
        drop(table);
        map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string. Takes only a read lock: concurrent `as_str`
    /// calls (every `Ord` comparison during sorts) never block each other.
    pub fn as_str(self) -> &'static str {
        interner().table.read().expect("interner poisoned")[self.0 as usize]
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            // Resolve both sides under one read-lock acquisition: this
            // comparator runs inside hot sorts (canonicalization, sorted
            // substitution pairs), where two lock round-trips per
            // comparison dominate the actual string compare.
            let table = interner().table.read().expect("interner poisoned");
            table[self.0 as usize].cmp(table[other.0 as usize])
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::new("p"), Symbol::new("q"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse lexicographic order to make sure ordering does
        // not fall back to interning order.
        let z = Symbol::new("zzz-sym");
        let a = Symbol::new("aaa-sym");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }
}
