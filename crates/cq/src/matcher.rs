//! The planned, trail-based homomorphism matcher — the one search engine
//! behind every decision procedure in the workspace.
//!
//! Chase termination (§4 of the paper), Σ-equivalence and sound C&B (§5),
//! dependency implication and satisfaction, query isomorphism, and bag
//! containment all bottom out in homomorphism search between conjunctions
//! of atoms. Before this module they ran five independent copies of the
//! same naive backtracker, each cloning a `HashMap`-backed [`Subst`] per
//! seed and per emitted match with a static left-to-right atom order. The
//! matcher replaces all of them with one compiled-plan search:
//!
//! ## Plan format
//!
//! [`MatchPlan::new`]/[`MatchPlan::optimized`] compile a source conjunction
//! once into a [`MatchPlan`]:
//!
//! * every source variable is numbered into a **dense slot** (`u32`), in
//!   first-occurrence order along the plan;
//! * every atom becomes a `PlanStep`: its predicate/arity key plus one
//!   `ArgOp` per argument — `Const(t)` (target argument must equal `t`) or
//!   `Slot(s)` (bind or compare slot `s`);
//! * `new` keeps the original atom order, so the emission sequence is
//!   bit-identical to the naive backtracker's ([`mod@reference`]) — required
//!   wherever "the first homomorphism" is semantically load-bearing (the
//!   chase engine's firing order); `optimized` greedily reorders atoms by
//!   selectivity and connectivity (constants and already-bound slots
//!   first, atoms joined to the bound prefix before cartesian detours) —
//!   safe for every existence-only or set-valued use.
//!
//! Because slots are symbolic, a plan is **renaming-invariant**: the chase
//! engine compiles one plan per dependency and reuses it across every
//! step, even though the naive path had to rename the dependency apart
//! from the evolving query before each search.
//!
//! ## Trail invariants
//!
//! A search runs on a `Frame`: a slot array plus an **undo trail**.
//! Binding a slot pushes its index on the trail; backtracking pops the
//! trail back to the entry mark. No per-candidate or per-emission
//! `HashMap` clone ever happens; a complete match is read directly off
//! the slot array through [`Match`], and only materialized into a
//! [`Subst`] when the caller keeps it. Invariants:
//!
//! * `bound[s]` ⇔ slot `s` was seeded or trail-bound; seeded slots are
//!   never on the trail (they survive backtracking across the whole
//!   search);
//! * every trail entry is popped exactly once, by the frame that pushed
//!   it — emit callbacks observe a fully bound frame but must not hold
//!   onto it past their return.
//!
//! ## Delta semantics
//!
//! [`MatchPlan::search_delta`] restricts the search to matches that use at
//! least one target atom from a caller-supplied **delta** ([`DeltaSlots`]:
//! the atoms added or rewritten since the calling dependency's last
//! exhaustive check). It runs one *pinned* pass per plan step — pass `p`
//! draws step `p`'s candidates from the delta only — so a conjunction
//! with `k` atoms costs `k` pinned searches, each touching the delta
//! instead of the whole target. A match using several delta atoms may be
//! emitted once per pinned pass; first-match callers don't care and
//! enumerating callers dedup by slot values. This is what turns the
//! `e(X,Y) -> e(Y,Z)` budget-exhaustion chase from quadratic to linear
//! work per step: the applicable homomorphism lives at the newest atom,
//! and the pinned pass finds it without rescanning the old ones.
//!
//! ## Parallel probes
//!
//! [`probe_all`] fans independent read-only searches out across scoped
//! worker threads and returns their results in submission order. The
//! chase engine uses it to probe several queued dependencies' first
//! admissible homomorphisms speculatively: the lowest-indexed actionable
//! probe commits — preserving the reference firing order exactly — and
//! "no match" verdicts for the others are retired wholesale, since every
//! probe ran against the same immutable body snapshot. (Custom admission
//! predicates — the sound chase's assignment-fixing test of Example 5.1 —
//! close over mutable state and keep the sequential path.)
//!
//! The naive backtracker survives unchanged as [`mod@reference`], the
//! differential-testing oracle (`tests/tests/matcher_differential.rs`).

use crate::atom::{Atom, Predicate};
use crate::subst::Subst;
use crate::term::{Term, Var};
use std::collections::HashMap;

/// Target atoms bucketed by predicate/arity: for each key, the indices
/// into the target slice holding an atom with that key, ascending.
///
/// Callers that repeatedly search the same (evolving) target — the
/// incremental chase engine's `BodyIndex` — maintain one of these across
/// calls instead of letting every search rebuild it.
pub type Buckets = HashMap<(Predicate, usize), Vec<usize>>;

/// Builds the bucket map for a target slice.
pub fn bucket_atoms(atoms: &[Atom]) -> Buckets {
    let mut m: Buckets = HashMap::new();
    for (i, a) in atoms.iter().enumerate() {
        m.entry(a.key()).or_default().push(i);
    }
    m
}

/// A borrowed view of the search target: slot-stable atom storage plus
/// the live buckets over it. Dead slots (the chase engine's deduplicated
/// duplicates) are simply absent from the buckets.
#[derive(Copy, Clone)]
pub struct Target<'a> {
    /// The atom storage candidates index into.
    pub atoms: &'a [Atom],
    /// The `(predicate, arity)` buckets over the live atoms.
    pub buckets: &'a Buckets,
}

impl<'a> Target<'a> {
    /// A target over `atoms` with caller-maintained `buckets`.
    pub fn new(atoms: &'a [Atom], buckets: &'a Buckets) -> Target<'a> {
        Target { atoms, buckets }
    }
}

/// How a slot is seeded before the search starts.
pub enum Seed<'a> {
    /// No pre-bindings.
    Empty,
    /// Pre-bind every plan slot whose variable the substitution maps;
    /// bindings of variables outside the plan ride along into
    /// [`Match::to_subst`] (matching the historical `extend_homomorphism`
    /// contract).
    Subst(&'a Subst),
    /// Pre-bind from a lookup closure (used by the chase engine to seed a
    /// conclusion-extension search straight from a premise frame, with no
    /// intermediate `Subst`). Out-of-plan bindings are *not* carried into
    /// [`Match::to_subst`].
    Fn(&'a dyn Fn(Var) -> Option<Term>),
}

/// Delta candidates for [`MatchPlan::search_delta`]: the recently
/// added/rewritten target slots, grouped by predicate/arity key.
#[derive(Default, Debug)]
pub struct DeltaSlots {
    by_key: HashMap<(Predicate, usize), Vec<usize>>,
}

impl DeltaSlots {
    /// An empty delta (no search will emit anything).
    pub fn new() -> DeltaSlots {
        DeltaSlots::default()
    }

    /// Records `slot` (holding `atom`) as part of the delta.
    pub fn push(&mut self, atom: &Atom, slot: usize) {
        self.by_key.entry(atom.key()).or_default().push(slot);
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.by_key.values().all(|v| v.is_empty())
    }

    fn get(&self, key: &(Predicate, usize)) -> Option<&[usize]> {
        self.by_key.get(key).map(|v| v.as_slice())
    }
}

/// One argument of a plan step.
#[derive(Copy, Clone, Debug)]
enum ArgOp {
    /// The target argument must equal this term exactly.
    Const(Term),
    /// Bind (first occurrence on this path) or compare (already bound)
    /// the dense slot.
    Slot(u32),
}

/// One atom of the compiled plan. Its argument ops live in the plan's
/// flat `ops` arena at `[ops_start, ops_start + key.1)` — one allocation
/// for the whole plan instead of one per atom (plan compilation sits on
/// small-query hot paths like containment and isomorphism checks).
#[derive(Debug)]
struct PlanStep {
    /// Predicate/arity bucket key.
    key: (Predicate, usize),
    /// Offset of this step's ops in the plan's arena.
    ops_start: u32,
}

/// A compiled source conjunction: atoms in search order, variables
/// numbered into dense slots. Reusable across any number of searches and
/// targets; see the module docs for the format.
pub struct MatchPlan {
    steps: Vec<PlanStep>,
    /// Flat argument-op arena, indexed per step via `ops_start`/arity.
    ops: Vec<ArgOp>,
    /// Slot → source variable. Slot lookup is a linear scan: source
    /// conjunctions carry at most a few dozen variables, where scanning
    /// interned ids beats hashing.
    vars: Vec<Var>,
}

impl MatchPlan {
    fn step_ops(&self, step: &PlanStep) -> &[ArgOp] {
        let start = step.ops_start as usize;
        &self.ops[start..start + step.key.1]
    }
}

impl MatchPlan {
    /// Compiles `src` keeping the original atom order. Emission order is
    /// identical to the naive backtracker's ([`mod@reference`]): use this
    /// wherever "first match" must agree with the historical semantics.
    pub fn new(src: &[Atom]) -> MatchPlan {
        MatchPlan::compile(src, (0..src.len()).collect())
    }

    /// Compiles `src` with atoms greedily reordered by selectivity and
    /// connectivity: prefer atoms whose arguments are constants or slots
    /// already bound by the prefix (or by `bound` — variables the caller
    /// will seed), break ties toward fewer fresh variables and then the
    /// original position (stability). Only the *order* changes — the
    /// emitted match set is the same as [`MatchPlan::new`]'s.
    pub fn optimized(src: &[Atom], bound: &[Var]) -> MatchPlan {
        MatchPlan::compile(src, MatchPlan::greedy_order(src, bound, |_| 0))
    }

    /// [`MatchPlan::optimized`] with live cardinality statistics
    /// (Selinger-lite): among atoms the static heuristic scores equally,
    /// scan the one with the fewest live candidates first. `card` maps a
    /// `(predicate, arity)` key to its current candidate count — pass the
    /// target's bucket sizes. Only the *order* changes, so this is safe
    /// exactly where `optimized` is (existence-only / set-valued
    /// searches).
    pub fn optimized_with_stats(
        src: &[Atom],
        bound: &[Var],
        card: &dyn Fn(&(Predicate, usize)) -> usize,
    ) -> MatchPlan {
        MatchPlan::compile(src, MatchPlan::greedy_order(src, bound, |a| card(&a.key())))
    }

    /// Greedy atom ordering: maximize `pinned*8 - fresh` (constants and
    /// already-bound slots first, fewer fresh variables on ties), break
    /// remaining ties toward the smaller candidate set per `card`, then
    /// the original position (stability).
    fn greedy_order(src: &[Atom], bound: &[Var], card: impl Fn(&Atom) -> usize) -> Vec<usize> {
        let mut order: Vec<usize> = Vec::with_capacity(src.len());
        let mut placed = vec![false; src.len()];
        let mut known: std::collections::HashSet<Var> = bound.iter().copied().collect();
        for _ in 0..src.len() {
            let mut best: Option<(i64, usize, usize)> = None; // (score, card, idx)
            for (i, atom) in src.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                let mut pinned = 0i64; // constants + already-known vars
                let mut fresh = 0i64; // distinct new vars introduced
                let mut seen_here: Vec<Var> = Vec::new();
                for t in &atom.args {
                    match t {
                        Term::Const(_) => pinned += 1,
                        Term::Var(v) => {
                            if known.contains(v) || seen_here.contains(v) {
                                pinned += 1;
                            } else {
                                fresh += 1;
                                seen_here.push(*v);
                            }
                        }
                    }
                }
                // Higher is better; full ties resolve to the lowest
                // original index because the scan is ascending and the
                // comparisons are strict.
                let score = pinned * 8 - fresh;
                let c = card(atom);
                if best.map_or(true, |(s, bc, _)| score > s || (score == s && c < bc)) {
                    best = Some((score, c, i));
                }
            }
            let (_, _, i) = best.expect("unplaced atom remains");
            placed[i] = true;
            known.extend(src[i].vars());
            order.push(i);
        }
        order
    }

    fn compile(src: &[Atom], order: Vec<usize>) -> MatchPlan {
        let mut vars: Vec<Var> = Vec::new();
        let mut steps = Vec::with_capacity(order.len());
        let mut ops: Vec<ArgOp> = Vec::with_capacity(src.iter().map(Atom::arity).sum());
        for &i in &order {
            let atom = &src[i];
            let ops_start = u32::try_from(ops.len()).expect("ops overflow");
            for t in &atom.args {
                ops.push(match t {
                    Term::Const(_) => ArgOp::Const(*t),
                    Term::Var(v) => {
                        let slot = match vars.iter().position(|w| w == v) {
                            Some(s) => s,
                            None => {
                                vars.push(*v);
                                vars.len() - 1
                            }
                        };
                        ArgOp::Slot(u32::try_from(slot).expect("slot overflow"))
                    }
                });
            }
            steps.push(PlanStep { key: atom.key(), ops_start });
        }
        MatchPlan { steps, ops, vars }
    }

    /// Number of source atoms.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the source conjunction empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of dense variable slots.
    pub fn slot_count(&self) -> usize {
        self.vars.len()
    }

    /// The slot of `v`, if `v` occurs in the source conjunction.
    pub fn slot(&self, v: Var) -> Option<u32> {
        self.vars.iter().position(|w| *w == v).map(|s| s as u32)
    }

    /// The source variables in slot order.
    pub fn slot_vars(&self) -> &[Var] {
        &self.vars
    }

    /// Enumerates matches of the plan against `target`, extending `seed`.
    /// `emit` observes each complete match; returning `false` stops the
    /// search. Returns `false` iff `emit` stopped it.
    pub fn search(
        &self,
        target: Target<'_>,
        seed: &Seed<'_>,
        emit: &mut dyn FnMut(&Match<'_>) -> bool,
    ) -> bool {
        let mut frame = Frame::new(self, seed);
        self.run(&mut frame, target, None, usize::MAX, seed, emit)
    }

    /// [`MatchPlan::search`] restricted to matches that use at least one
    /// target slot from `delta`. See the module docs for the pinned-pass
    /// decomposition (matches touching several delta atoms may be emitted
    /// once per pass).
    pub fn search_delta(
        &self,
        target: Target<'_>,
        delta: &DeltaSlots,
        seed: &Seed<'_>,
        emit: &mut dyn FnMut(&Match<'_>) -> bool,
    ) -> bool {
        let mut frame = Frame::new(self, seed);
        for pin in 0..self.steps.len() {
            if delta.get(&self.steps[pin].key).is_none_or(|c| c.is_empty()) {
                continue; // nothing in the delta can satisfy this step
            }
            if !self.run(&mut frame, target, Some(delta), pin, seed, emit) {
                return false;
            }
        }
        true
    }

    /// First match extending `seed`, if any, materialized as a [`Subst`].
    pub fn first_match(&self, target: Target<'_>, seed: &Seed<'_>) -> Option<Subst> {
        let mut found = None;
        self.search(target, seed, &mut |m| {
            found = Some(m.to_subst());
            false
        });
        found
    }

    /// Is there any match extending `seed`?
    pub fn has_match(&self, target: Target<'_>, seed: &Seed<'_>) -> bool {
        let mut hit = false;
        self.search(target, seed, &mut |_| {
            hit = true;
            false
        });
        hit
    }

    /// Depth-first search from `frame`. `pin == usize::MAX` means no step
    /// is pinned to the delta.
    fn run(
        &self,
        frame: &mut Frame,
        target: Target<'_>,
        delta: Option<&DeltaSlots>,
        pin: usize,
        seed: &Seed<'_>,
        emit: &mut dyn FnMut(&Match<'_>) -> bool,
    ) -> bool {
        self.run_step(frame, target, delta, pin, 0, seed, emit)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_step(
        &self,
        frame: &mut Frame,
        target: Target<'_>,
        delta: Option<&DeltaSlots>,
        pin: usize,
        depth: usize,
        seed: &Seed<'_>,
        emit: &mut dyn FnMut(&Match<'_>) -> bool,
    ) -> bool {
        if depth == self.steps.len() {
            return emit(&Match { plan: self, slots: &frame.slots, seed });
        }
        let step = &self.steps[depth];
        let cands: &[usize] = if depth == pin {
            delta.and_then(|d| d.get(&step.key)).unwrap_or(&[])
        } else {
            target.buckets.get(&step.key).map(|v| v.as_slice()).unwrap_or(&[])
        };
        for &j in cands {
            let mark = frame.trail.len();
            if frame.try_bind(self.step_ops(step), &target.atoms[j]) {
                let keep_going = self.run_step(frame, target, delta, pin, depth + 1, seed, emit);
                frame.undo_to(mark);
                if !keep_going {
                    return false;
                }
            } else {
                frame.undo_to(mark);
            }
        }
        true
    }
}

/// The reusable search state: dense slot array plus undo trail. See the
/// module docs for the invariants.
struct Frame {
    /// Slot values; meaningful only where `bound`.
    slots: Vec<Term>,
    /// Which slots hold a binding (seeded or trail-recorded).
    bound: Vec<bool>,
    /// Slots bound since the search started, in binding order.
    trail: Vec<u32>,
}

impl Frame {
    fn new(plan: &MatchPlan, seed: &Seed<'_>) -> Frame {
        let n = plan.vars.len();
        // Unbound slots carry their own variable as a placeholder, so a
        // fully seeded frame doubles as the identity on untouched vars.
        let mut slots: Vec<Term> = plan.vars.iter().map(|v| Term::Var(*v)).collect();
        let mut bound = vec![false; n];
        match seed {
            Seed::Empty => {}
            Seed::Subst(s) => {
                for (slot, v) in plan.vars.iter().enumerate() {
                    if let Some(t) = s.get(*v) {
                        slots[slot] = *t;
                        bound[slot] = true;
                    }
                }
            }
            Seed::Fn(f) => {
                for (slot, v) in plan.vars.iter().enumerate() {
                    if let Some(t) = f(*v) {
                        slots[slot] = t;
                        bound[slot] = true;
                    }
                }
            }
        }
        Frame { slots, bound, trail: Vec::with_capacity(n) }
    }

    /// Unifies the step's ops against the target atom, recording new
    /// bindings on the trail. On `false` the caller must `undo_to` its
    /// entry mark (partial bindings may have been trailed).
    fn try_bind(&mut self, ops: &[ArgOp], atom: &Atom) -> bool {
        debug_assert_eq!(ops.len(), atom.args.len());
        for (op, dt) in ops.iter().zip(atom.args.iter()) {
            match op {
                ArgOp::Const(c) => {
                    if dt != c {
                        return false;
                    }
                }
                ArgOp::Slot(s) => {
                    let s = *s as usize;
                    if self.bound[s] {
                        if self.slots[s] != *dt {
                            return false;
                        }
                    } else {
                        self.slots[s] = *dt;
                        self.bound[s] = true;
                        self.trail.push(s as u32);
                    }
                }
            }
        }
        true
    }

    /// Pops trail entries back to `mark`. The stale slot values are left
    /// in place — a slot is only ever read where `bound`, and emit
    /// callbacks observe frames with every plan slot bound.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let s = self.trail.pop().expect("trail underflow") as usize;
            self.bound[s] = false;
        }
    }
}

/// A complete match, viewed directly over the frame's slot array. Valid
/// only for the duration of the emit callback.
pub struct Match<'a> {
    plan: &'a MatchPlan,
    slots: &'a [Term],
    seed: &'a Seed<'a>,
}

impl Match<'_> {
    /// The slot values in slot order — all bound at emission time. Two
    /// matches with equal slot slices are the same variable binding, so
    /// this slice is the allocation-free dedup key.
    pub fn slots(&self) -> &[Term] {
        self.slots
    }

    /// The image of `v`, if `v` has a slot in the plan.
    pub fn get(&self, v: Var) -> Option<Term> {
        self.plan.slot(v).map(|s| self.slots[s as usize])
    }

    /// Applies the match to a term (unbound/foreign variables map to
    /// themselves, like [`Subst::apply_term`]).
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.get(*v).unwrap_or(*t),
            Term::Const(_) => *t,
        }
    }

    /// Applies the match to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom { pred: a.pred, args: a.args.iter().map(|t| self.apply_term(t)).collect() }
    }

    /// Materializes the match as a [`Subst`]: the slot bindings, plus —
    /// for [`Seed::Subst`] — the seed's out-of-plan bindings (the
    /// historical `extend_homomorphism` contract).
    pub fn to_subst(&self) -> Subst {
        let mut out = match self.seed {
            Seed::Subst(s) => (*s).clone(),
            Seed::Empty | Seed::Fn(_) => Subst::new(),
        };
        for (slot, v) in self.plan.vars.iter().enumerate() {
            out.set(*v, self.slots[slot]);
        }
        out
    }
}

/// Runs independent jobs on scoped worker threads, returning their
/// results in submission order. The chase engine's speculative dependency
/// probes go through here; each job must only read shared state.
///
/// Jobs beyond the first run on spawned threads; the first runs on the
/// caller's thread (no spawn cost for the sequential case and exactly
/// `jobs.len() - 1` threads otherwise).
pub fn probe_all<R: Send>(jobs: Vec<Box<dyn FnOnce() -> R + Send + '_>>) -> Vec<R> {
    if jobs.is_empty() {
        return Vec::new();
    }
    if jobs.len() == 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    std::thread::scope(|scope| {
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("nonempty");
        let handles: Vec<_> = jobs.map(|j| scope.spawn(j)).collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(first());
        for h in handles {
            out.push(h.join().expect("probe worker panicked"));
        }
        out
    })
}

/// A run-long pool of parked worker threads for speculative probes.
///
/// [`probe_all`] spawns (and joins) `k - 1` scoped threads on **every**
/// chase step, which swamps the probe payoff on small steps. A
/// `ProbePool` pays the spawn cost once per run: workers park on a
/// condvar and [`ProbePool::run`] hands them jobs per step, blocking
/// until every job has finished — the same barrier semantics as
/// `probe_all`, with identical submission-order results (the first job
/// still runs on the caller's thread). Worker panics are caught and
/// re-raised on the caller.
pub struct ProbePool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

type ErasedJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: std::sync::Mutex<std::collections::VecDeque<ErasedJob>>,
    available: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

/// Lock a mutex, recovering from poisoning (no pool invariant is
/// protected by unwinding — results slots are all-or-nothing).
fn lock<'a, T>(m: &'a std::sync::Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ProbePool {
    /// A pool with `workers` parked threads (at least one). A pool sized
    /// for `k`-wide probing wants `k - 1` workers: the caller's thread
    /// runs the first job.
    pub fn new(workers: usize) -> ProbePool {
        let shared = std::sync::Arc::new(PoolShared {
            queue: std::sync::Mutex::new(std::collections::VecDeque::new()),
            available: std::sync::Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = lock(&shared.queue);
                        loop {
                            if let Some(j) = q.pop_front() {
                                break j;
                            }
                            if shared.shutdown.load(std::sync::atomic::Ordering::Acquire) {
                                return;
                            }
                            q = shared
                                .available
                                .wait(q)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    job();
                })
            })
            .collect();
        ProbePool { shared, workers }
    }

    /// Runs the jobs, first on the caller's thread and the rest on pool
    /// workers, and returns their results in submission order. Blocks
    /// until **every** submitted job has completed, so the jobs may
    /// borrow from the caller's stack even though the internal handoff
    /// erases their lifetimes.
    pub fn run<'env, R: Send + 'env>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'env>>,
    ) -> Vec<R> {
        let n = jobs.len();
        if n <= 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }
        struct RunState<R> {
            results: std::sync::Mutex<Vec<Option<std::thread::Result<R>>>>,
            pending: std::sync::Mutex<usize>,
            done: std::sync::Condvar,
        }
        let state = std::sync::Arc::new(RunState::<R> {
            results: std::sync::Mutex::new((0..n).map(|_| None).collect()),
            pending: std::sync::Mutex::new(n - 1),
            done: std::sync::Condvar::new(),
        });
        let mut jobs = jobs.into_iter();
        let first = jobs.next().expect("n > 1");
        {
            let mut q = lock(&self.shared.queue);
            for (k, job) in jobs.enumerate() {
                let st = std::sync::Arc::clone(&state);
                let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    lock(&st.results)[k + 1] = Some(r);
                    let mut p = lock(&st.pending);
                    *p -= 1;
                    if *p == 0 {
                        st.done.notify_all();
                    }
                });
                // SAFETY: the erased closure borrows (at most) from
                // `'env`, and this function does not return until the
                // barrier below has observed every job complete — the
                // borrows cannot outlive the frames they point into. A
                // `Box<dyn FnOnce + Send>` has the same layout for any
                // lifetime bound; only the bound is erased.
                let erased: ErasedJob = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, ErasedJob>(closure)
                };
                q.push_back(erased);
            }
            self.shared.available.notify_all();
        }
        let first_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(first));
        {
            let mut p = lock(&state.pending);
            while *p > 0 {
                p = state.done.wait(p).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let mut slots = lock(&state.results);
        slots[0] = Some(first_result);
        slots
            .drain(..)
            .map(|r| match r.expect("barrier guarantees completion") {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for ProbePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, std::sync::atomic::Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Query isomorphism search routed through the plan machinery: a
/// bijective variable pairing carrying `src` onto a sub-multiset of
/// `dst_atoms` that uses every target exactly once (size mismatches are
/// rejected up front), seeded by the head pairs. Returns the
/// witnessing forward map. Unlike the homomorphism frame this tracks a
/// reverse binding and a used-target mask, both trail-undone.
pub fn find_bijection(
    src: &[Atom],
    src_head: &[Term],
    dst_atoms: &[Atom],
    dst_head: &[Term],
) -> Option<HashMap<Var, Var>> {
    // Reference-order plan: the O(n) compile beats the greedy reorder's
    // payoff on the small bodies this runs against (the chase-cache hit
    // path does an isomorphism check per probe), and the injective
    // used-mask already prunes hard.
    // Guard both documented preconditions here: a size mismatch would
    // otherwise let match_steps succeed with target atoms left unused —
    // an injective-but-not-surjective map passed off as an isomorphism.
    if src.len() != dst_atoms.len() || src_head.len() != dst_head.len() {
        return None;
    }
    let plan = MatchPlan::new(src);
    let mut iso = IsoFrame {
        fwd: HashMap::new(),
        bwd: HashMap::new(),
        used: vec![false; dst_atoms.len()],
        trail: Vec::new(),
    };
    for (s, t) in src_head.iter().zip(dst_head.iter()) {
        if !iso.pair_terms(s, t) {
            return None;
        }
    }
    iso.match_steps(&plan, dst_atoms, 0).then(|| iso.fwd.clone())
}

struct IsoFrame {
    fwd: HashMap<Var, Var>,
    bwd: HashMap<Var, Var>,
    used: Vec<bool>,
    /// Source vars bound since the start, for undo.
    trail: Vec<Var>,
}

impl IsoFrame {
    /// Pairs `s ↔ t` under the bijection; records new pairs on the trail.
    /// On `false` the caller undoes to its mark.
    fn pair_terms(&mut self, s: &Term, t: &Term) -> bool {
        match (s, t) {
            (Term::Const(c), Term::Const(d)) => c == d,
            (Term::Var(a), Term::Var(b)) => match (self.fwd.get(a), self.bwd.get(b)) {
                (Some(b0), _) => b0 == b,
                (None, Some(_)) => false, // b already paired with another var
                (None, None) => {
                    self.fwd.insert(*a, *b);
                    self.bwd.insert(*b, *a);
                    self.trail.push(*a);
                    true
                }
            },
            _ => false,
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let a = self.trail.pop().expect("trail underflow");
            if let Some(b) = self.fwd.remove(&a) {
                self.bwd.remove(&b);
            }
        }
    }

    fn match_steps(&mut self, plan: &MatchPlan, dst: &[Atom], depth: usize) -> bool {
        if depth == plan.steps.len() {
            return true;
        }
        let step = &plan.steps[depth];
        // Linear candidate scan with a key filter: iso targets are the
        // same (small) size as the source, so the bucket map a
        // homomorphism search amortizes would cost more than it saves.
        for j in 0..dst.len() {
            if self.used[j] || dst[j].key() != step.key {
                continue;
            }
            let mark = self.trail.len();
            let mut ok = true;
            for (op, dt) in plan.step_ops(step).iter().zip(dst[j].args.iter()) {
                let st = match op {
                    ArgOp::Const(c) => *c,
                    ArgOp::Slot(s) => Term::Var(plan.vars[*s as usize]),
                };
                if !self.pair_terms(&st, dt) {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.used[j] = true;
                if self.match_steps(plan, dst, depth + 1) {
                    return true;
                }
                self.used[j] = false;
            }
            self.undo_to(mark);
        }
        false
    }
}

pub mod reference {
    //! The naive backtracking homomorphism search — the seed
    //! implementation, preserved verbatim as the differential-testing
    //! oracle for the planned matcher. Every search clones a
    //! `HashMap`-backed [`Subst`] per seed and walks the source atoms in
    //! their written order; its value is being obviously correct and
    //! independently derived. Do not "optimize" this module.

    use super::Buckets;
    use crate::atom::Atom;
    use crate::subst::Subst;
    use crate::term::{Term, Var};

    /// Tries to unify the source atom with the target atom under `s`,
    /// mutating `s`. Returns the bindings added (for backtracking) or
    /// `None`.
    fn match_atom(src: &Atom, dst: &Atom, s: &mut Subst) -> Option<Vec<Var>> {
        debug_assert_eq!(src.key(), dst.key());
        let mut added = Vec::new();
        for (st, dt) in src.args.iter().zip(dst.args.iter()) {
            match st {
                Term::Const(c) => {
                    if *dt != Term::Const(*c) {
                        for v in &added {
                            s.remove(*v);
                        }
                        return None;
                    }
                }
                Term::Var(v) => match s.get(*v) {
                    Some(bound) => {
                        if bound != dt {
                            for w in &added {
                                s.remove(*w);
                            }
                            return None;
                        }
                    }
                    None => {
                        s.set(*v, *dt);
                        added.push(*v);
                    }
                },
            }
        }
        Some(added)
    }

    /// Backtracking search. `emit` is called with each complete
    /// homomorphism; returning `false` from `emit` stops the search.
    fn search(
        src: &[Atom],
        dst: &[Atom],
        buckets: &Buckets,
        idx: usize,
        s: &mut Subst,
        emit: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        if idx == src.len() {
            return emit(s);
        }
        let atom = &src[idx];
        let Some(cands) = buckets.get(&atom.key()) else {
            return true; // no candidates: this branch yields nothing
        };
        for &j in cands {
            if let Some(added) = match_atom(atom, &dst[j], s) {
                let keep_going = search(src, dst, buckets, idx + 1, s, emit);
                for v in added {
                    s.remove(v);
                }
                if !keep_going {
                    return false;
                }
            }
        }
        true
    }

    /// Lazily enumerates homomorphisms from `src` into `dst` extending
    /// `seed`, restricted to the target atoms listed in `buckets`.
    pub fn search_homomorphisms(
        src: &[Atom],
        dst: &[Atom],
        buckets: &Buckets,
        seed: &Subst,
        emit: &mut dyn FnMut(&Subst) -> bool,
    ) {
        let mut s = seed.clone();
        search(src, dst, buckets, 0, &mut s, emit);
    }

    /// First homomorphism extending `seed`, if any.
    pub fn extend_homomorphism(src: &[Atom], dst: &[Atom], seed: &Subst) -> Option<Subst> {
        let buckets = super::bucket_atoms(dst);
        let mut found = None;
        search_homomorphisms(src, dst, &buckets, seed, &mut |h| {
            found = Some(h.clone());
            false
        });
        found
    }

    /// First homomorphism extending `seed` and satisfying `pred`.
    pub fn find_homomorphism_where(
        src: &[Atom],
        dst: &[Atom],
        seed: &Subst,
        pred: &mut dyn FnMut(&Subst) -> bool,
    ) -> Option<Subst> {
        let buckets = super::bucket_atoms(dst);
        let mut found = None;
        search_homomorphisms(src, dst, &buckets, seed, &mut |h| {
            if pred(h) {
                found = Some(h.clone());
                false
            } else {
                true
            }
        });
        found
    }

    /// All homomorphisms extending `seed`, deduplicated by their sorted
    /// binding pairs (the historical allocation-per-emission dedup, kept
    /// as the oracle for the planned path's slot-slice dedup). Returns
    /// the homomorphisms and whether the cap cut the enumeration short.
    pub fn enumerate_homomorphisms(
        src: &[Atom],
        dst: &[Atom],
        seed: &Subst,
        cap: usize,
    ) -> (Vec<Subst>, bool) {
        let buckets = super::bucket_atoms(dst);
        let mut out: Vec<Subst> = Vec::new();
        let mut truncated = false;
        let mut seen: std::collections::HashSet<Vec<(Var, Term)>> =
            std::collections::HashSet::new();
        search_homomorphisms(src, dst, &buckets, seed, &mut |h| {
            if seen.insert(h.sorted_pairs()) {
                if out.len() == cap {
                    truncated = true;
                    return false;
                }
                out.push(h.clone());
            }
            true
        });
        (out, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::query::CqQuery;

    fn q(s: &str) -> CqQuery {
        parse_query(s).unwrap()
    }

    fn all_planned(src: &[Atom], dst: &[Atom], seed: &Subst) -> Vec<Subst> {
        let buckets = bucket_atoms(dst);
        let plan = MatchPlan::new(src);
        let mut out = Vec::new();
        plan.search(Target::new(dst, &buckets), &Seed::Subst(seed), &mut |m| {
            out.push(m.to_subst());
            true
        });
        out
    }

    #[test]
    fn plan_search_matches_reference_emission_order() {
        let src = q("q() :- p(X,Y), p(Y,Z)").body;
        let dst = q("q() :- p(1,2), p(2,3), p(2,2)").body;
        let planned = all_planned(&src, &dst, &Subst::new());
        let buckets = bucket_atoms(&dst);
        let mut naive = Vec::new();
        reference::search_homomorphisms(&src, &dst, &buckets, &Subst::new(), &mut |h| {
            naive.push(h.clone());
            true
        });
        assert_eq!(planned, naive);
    }

    #[test]
    fn seeded_search_carries_out_of_plan_bindings() {
        let src = q("q() :- p(X)").body;
        let dst = q("q() :- p(1)").body;
        let seed =
            Subst::from_pairs([(Var::new("Z"), Term::int(9)), (Var::new("X"), Term::int(1))]);
        let hs = all_planned(&src, &dst, &seed);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].get(Var::new("Z")), Some(&Term::int(9)));
        // A conflicting seed kills the only candidate.
        let bad = Subst::from_pairs([(Var::new("X"), Term::int(2))]);
        assert!(all_planned(&src, &dst, &bad).is_empty());
    }

    #[test]
    fn optimized_plan_emits_the_same_match_set() {
        let src = q("q() :- a(X,Y), b(Y,3), c(Y)").body;
        let dst = q("q() :- a(1,2), a(2,2), b(2,3), c(2), b(1,4)").body;
        let by_plan: std::collections::HashSet<Vec<(Var, Term)>> =
            all_planned(&src, &dst, &Subst::new()).iter().map(Subst::sorted_pairs).collect();
        let plan = MatchPlan::optimized(&src, &[]);
        let buckets = bucket_atoms(&dst);
        let mut opt: std::collections::HashSet<Vec<(Var, Term)>> = std::collections::HashSet::new();
        plan.search(Target::new(&dst, &buckets), &Seed::Empty, &mut |m| {
            opt.insert(m.to_subst().sorted_pairs());
            true
        });
        assert_eq!(by_plan, opt);
        // And the optimized order leads with the constant-bearing b-atom.
        assert_eq!(plan.steps[0].key.0, crate::atom::Predicate::new("b"));
    }

    #[test]
    fn delta_search_requires_a_delta_atom() {
        let src = q("q() :- e(X,Y)").body;
        let dst = q("q() :- e(1,2), e(2,3), e(3,4)").body;
        let buckets = bucket_atoms(&dst);
        let plan = MatchPlan::new(&src);
        let mut delta = DeltaSlots::new();
        delta.push(&dst[2], 2); // only the newest atom is "new"
        let mut hits = Vec::new();
        plan.search_delta(Target::new(&dst, &buckets), &delta, &Seed::Empty, &mut |m| {
            hits.push(m.to_subst());
            true
        });
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get(Var::new("X")), Some(&Term::int(3)));
    }

    #[test]
    fn empty_plan_emits_once_and_never_under_delta() {
        let dst = q("q() :- p(1)").body;
        let buckets = bucket_atoms(&dst);
        let plan = MatchPlan::new(&[]);
        let mut n = 0;
        plan.search(Target::new(&dst, &buckets), &Seed::Empty, &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
        let mut nd = 0;
        plan.search_delta(
            Target::new(&dst, &buckets),
            &DeltaSlots::new(),
            &Seed::Empty,
            &mut |_| {
                nd += 1;
                true
            },
        );
        assert_eq!(nd, 0, "an empty conjunction can never touch the delta");
    }

    #[test]
    fn probe_all_preserves_submission_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..7usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(probe_all(jobs), vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn probe_pool_preserves_submission_order_and_reuses_workers() {
        let pool = ProbePool::new(3);
        for _ in 0..4 {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..7usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(pool.run(jobs), vec![0, 1, 4, 9, 16, 25, 36]);
        }
    }

    #[test]
    fn probe_pool_jobs_may_borrow_caller_state() {
        let pool = ProbePool::new(2);
        let data: Vec<usize> = (0..100).collect();
        let slices: Vec<&[usize]> = data.chunks(25).collect();
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send + '_>> = slices
            .iter()
            .map(|s| {
                let s = *s;
                Box::new(move || s.iter().sum::<usize>()) as Box<dyn FnOnce() -> usize + Send + '_>
            })
            .collect();
        assert_eq!(pool.run(jobs).into_iter().sum::<usize>(), (0..100).sum());
    }

    #[test]
    fn stats_ordering_changes_order_not_matches() {
        // Two all-fresh atoms: static heuristic ties; cardinality breaks
        // toward the small bucket.
        let src = q("q() :- big(X,Y), small(Y,Z)").body;
        let mut dst = q("q() :- small(7,8)").body;
        for i in 0..9 {
            dst.extend(q(&format!("q() :- big({i},{i})")).body);
        }
        let buckets = bucket_atoms(&dst);
        let card = |k: &(Predicate, usize)| buckets.get(k).map_or(0, |b| b.len());
        let plan = MatchPlan::optimized_with_stats(&src, &[], &card);
        assert_eq!(plan.steps[0].key.0, Predicate::new("small"));
        // Identical match sets either way.
        let base: std::collections::HashSet<Vec<(Var, Term)>> =
            all_planned(&src, &dst, &Subst::new()).iter().map(Subst::sorted_pairs).collect();
        let mut with_stats = std::collections::HashSet::new();
        plan.search(Target::new(&dst, &buckets), &Seed::Empty, &mut |m| {
            with_stats.insert(m.to_subst().sorted_pairs());
            true
        });
        assert_eq!(base, with_stats);
    }

    #[test]
    fn bijection_search_finds_renamings_only() {
        let a = q("q(X) :- p(X,Y), s(Y,Z)");
        let b = q("q(A) :- s(B,C), p(A,B)");
        let m = find_bijection(&a.body, &a.head, &b.body, &b.head).expect("isomorphic");
        assert_eq!(m.get(&Var::new("X")), Some(&Var::new("A")));
        assert_eq!(m.get(&Var::new("Y")), Some(&Var::new("B")));
        // Collapsing map is not a bijection.
        let c = q("q(X) :- p(X,X), s(X,X)");
        assert!(find_bijection(&a.body, &a.head, &c.body, &c.head).is_none());
    }
}
