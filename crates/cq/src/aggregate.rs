//! Aggregate conjunctive queries (§2.5 of the paper).
//!
//! An aggregate query is a CQ augmented with one aggregate term in its head:
//! `Q(S̄, α(y)) :- A(S̄, y, Z̄)`. Its **core** `Q̆(S̄, y) :- A(S̄, y, Z̄)` drives
//! all equivalence reasoning (Theorems 2.3 and 6.3).

use crate::atom::Atom;
use crate::query::CqQuery;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::collections::HashSet;
use std::fmt;

/// The aggregate functions covered by the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AggFn {
    /// `sum(y)`
    Sum,
    /// `count(y)` — over an argument.
    Count,
    /// `count(*)` — no argument.
    CountStar,
    /// `min(y)`
    Min,
    /// `max(y)`
    Max,
}

impl AggFn {
    /// Does the function take an argument variable?
    pub fn takes_arg(self) -> bool {
        !matches!(self, AggFn::CountStar)
    }

    /// Equivalence of queries with this function reduces to bag-set
    /// equivalence of cores (sum/count) — Theorem 2.3(1)/6.3(2).
    pub fn is_bag_set_sensitive(self) -> bool {
        matches!(self, AggFn::Sum | AggFn::Count | AggFn::CountStar)
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFn::Sum => "sum",
            AggFn::Count => "count",
            AggFn::CountStar => "count(*)",
            AggFn::Min => "min",
            AggFn::Max => "max",
        };
        f.write_str(s)
    }
}

/// An aggregate conjunctive query `Q(S̄, α(y)) :- body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateQuery {
    /// The query name.
    pub name: Symbol,
    /// Grouping terms `S̄` (the non-aggregated head arguments).
    pub grouping: Vec<Term>,
    /// The aggregate function α.
    pub agg: AggFn,
    /// The aggregated variable `y`; `None` exactly for `count(*)`.
    pub agg_var: Option<Var>,
    /// Body atoms (a multiset, as for [`CqQuery`]).
    pub body: Vec<Atom>,
}

impl AggregateQuery {
    /// Builds an aggregate query.
    pub fn new(
        name: &str,
        grouping: Vec<Term>,
        agg: AggFn,
        agg_var: Option<Var>,
        body: Vec<Atom>,
    ) -> AggregateQuery {
        AggregateQuery { name: Symbol::new(name), grouping, agg, agg_var, body }
    }

    /// The CQ core `Q̆(S̄, y) :- body` (§2.5). For `count(*)` the core head
    /// is just the grouping terms.
    pub fn core(&self) -> CqQuery {
        let mut head = self.grouping.clone();
        if let Some(y) = self.agg_var {
            head.push(Term::Var(y));
        }
        CqQuery { name: self.name, head, body: self.body.clone() }
    }

    /// Validity: safety of the core, the aggregate variable not among the
    /// grouping variables, and `agg_var` presence matching the function.
    pub fn is_valid(&self) -> bool {
        if self.agg.takes_arg() != self.agg_var.is_some() {
            return false;
        }
        if let Some(y) = self.agg_var {
            let grouping_vars: HashSet<Var> =
                self.grouping.iter().filter_map(Term::as_var).collect();
            if grouping_vars.contains(&y) {
                return false;
            }
        }
        self.core().is_safe()
    }

    /// Two aggregate queries are *compatible* when they have the same list
    /// of head arguments: same grouping arity and the same aggregate term
    /// (Definition 2.1 context). Only compatible queries are ever compared
    /// for equivalence.
    pub fn compatible(&self, other: &AggregateQuery) -> bool {
        self.grouping.len() == other.grouping.len() && self.agg == other.agg
    }
}

impl fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for t in &self.grouping {
            write!(f, "{t}, ")?;
        }
        match self.agg_var {
            Some(y) => write!(f, "{}({y})", self.agg)?,
            None => write!(f, "{}", self.agg)?,
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AggregateQuery {
        AggregateQuery::new(
            "q",
            vec![Term::var("X")],
            AggFn::Sum,
            Some(Var::new("Y")),
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
        )
    }

    #[test]
    fn core_appends_agg_var() {
        let q = sample();
        let core = q.core();
        assert_eq!(core.head, vec![Term::var("X"), Term::var("Y")]);
        assert!(core.is_safe());
    }

    #[test]
    fn count_star_core_has_no_agg_var() {
        let q = AggregateQuery::new(
            "q",
            vec![Term::var("X")],
            AggFn::CountStar,
            None,
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(q.is_valid());
        assert_eq!(q.core().head, vec![Term::var("X")]);
    }

    #[test]
    fn validity_rules() {
        let q = sample();
        assert!(q.is_valid());
        // Aggregated variable among grouping variables: invalid.
        let bad = AggregateQuery::new(
            "q",
            vec![Term::var("Y")],
            AggFn::Sum,
            Some(Var::new("Y")),
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(!bad.is_valid());
        // count(*) with an arg var: invalid.
        let bad2 = AggregateQuery::new(
            "q",
            vec![Term::var("X")],
            AggFn::CountStar,
            Some(Var::new("Y")),
            vec![Atom::new("p", vec![Term::var("X"), Term::var("Y")])],
        );
        assert!(!bad2.is_valid());
    }

    #[test]
    fn compatibility() {
        let a = sample();
        let mut b = sample();
        assert!(a.compatible(&b));
        b.agg = AggFn::Max;
        assert!(!a.compatible(&b));
    }

    #[test]
    fn display() {
        assert_eq!(sample().to_string(), "q(X, sum(Y)) :- p(X, Y)");
    }
}
