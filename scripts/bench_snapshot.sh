#!/usr/bin/env bash
# Snapshot the chase-engine benchmarks into BENCH_chase.json.
#
# Runs the criterion `chase_scaling` and `equiv` benches with a reduced
# sample count (fast enough for CI), collects per-case median times via the
# harness's BENCH_JSON_OUT hook, and writes a single JSON document with
# per-case medians plus indexed-vs-reference speedups. Commit the result to
# track the perf trajectory across PRs.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#   BENCH_SAMPLES   samples per case (default 12)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_chase.json}"
SAMPLES="${BENCH_SAMPLES:-12}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Benches must at minimum compile even when this script is not run in full
# (the verify path executes only this cheap step).
cargo bench --no-run -q

BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench chase_scaling -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench equiv -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench equiv_batch -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench hom_search -- 2>&1 | sed 's/^/  /'

jq -s --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" --arg samples "$SAMPLES" '
  {
    generated: $date,
    samples_per_case: ($samples | tonumber),
    cases: map({id, median_ns, samples, iters_per_sample}),
    speedups: (
      group_by(.id | sub("/set_chase(_reference)?/"; "/")) | map(
        select(length == 2) |
        (map(select(.id | contains("set_chase_reference"))) | first) as $ref |
        (map(select(.id | contains("set_chase/"))) | first) as $idx |
        select($ref != null and $idx != null) |
        {
          case: ($idx.id | sub("/set_chase/"; "/")),
          indexed_median_ns: $idx.median_ns,
          reference_median_ns: $ref.median_ns,
          speedup: (($ref.median_ns / $idx.median_ns * 100 | round) / 100)
        }
      )
    ),
    hom_search: (
      map(select(.id | startswith("hom_search/")))
      | group_by(.id | sub("/(planned|delta|indexed|reference)/"; "/")) | map(
        (map(select(.id | contains("/reference/"))) | first) as $ref |
        select($ref != null) |
        {
          case: ($ref.id | sub("/reference/"; "/")),
          reference_median_ns: $ref.median_ns,
          contenders: (
            map(select(.id | contains("/reference/") | not)) | map({
              id,
              median_ns,
              speedup: (($ref.median_ns / .median_ns * 100 | round) / 100)
            })
          )
        }
      )
    ),
    batch_speedups: (
      map(select(.id | startswith("equiv_batch/")))
      | group_by(.id | sub("/(cold|warm)/"; "/")) | map(
        select(length == 2) |
        (map(select(.id | contains("/cold/"))) | first) as $cold |
        (map(select(.id | contains("/warm/"))) | first) as $warm |
        select($cold != null and $warm != null) |
        {
          case: ($warm.id | sub("/warm/"; "/")),
          cold_median_ns: $cold.median_ns,
          warm_median_ns: $warm.median_ns,
          warm_speedup: (($cold.median_ns / $warm.median_ns * 100 | round) / 100)
        }
      )
    )
  }' "$RAW" > "$OUT"

echo "wrote $OUT"
jq -r '.speedups[] | "\(.case): \(.speedup)x (indexed \(.indexed_median_ns)ns vs reference \(.reference_median_ns)ns)"' "$OUT"
jq -r '.batch_speedups[] | "\(.case): warm cache \(.warm_speedup)x (cold \(.cold_median_ns)ns vs warm \(.warm_median_ns)ns)"' "$OUT"
jq -r '.hom_search[] | .case as $c | .contenders[] | "\($c): \(.id | sub(".*/(?<k>[a-z]+)/.*"; "\(.k)")) \(.speedup)x vs reference"' "$OUT"
