#!/usr/bin/env bash
# Snapshot the chase-engine benchmarks into BENCH_chase.json.
#
# Runs the criterion `chase_scaling`, `equiv`, `equiv_batch`, `hom_search`
# and `persist` benches with a reduced sample count (fast enough for CI),
# collects per-case median times via the harness's BENCH_JSON_OUT hook, and
# writes a single JSON document with per-case medians, indexed-vs-reference
# speedups, the persistence tier's cold-start-to-warm hit rates measured
# through the `eqsql-serve` binary, and load latencies both in-process
# (`latency`) and over a live `--listen` socket (`net`). Commit the result
# to track the perf trajectory across PRs.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#   BENCH_SAMPLES   samples per case (default 12)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_chase.json}"
SAMPLES="${BENCH_SAMPLES:-12}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Benches must at minimum compile even when this script is not run in full
# (the verify path executes only this cheap step).
cargo bench --no-run -q

BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench chase_scaling -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench equiv -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench equiv_batch -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench hom_search -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench persist -- 2>&1 | sed 's/^/  /'
BENCH_JSON_OUT="$RAW" BENCH_SAMPLES="$SAMPLES" \
    cargo bench -q -p eqsql-bench --bench arena -- 2>&1 | sed 's/^/  /'

# Cold-start-to-warm hit rate through the real binary: a cold eqsql-serve
# populates a cache directory on the equiv_batch workload, a second process
# restarts over it, and a fresh-dir --repeat 2 run provides the
# same-process warm baseline the restart must stay within 5% of.
PERSIST_DIR="$(mktemp -d)"
PERSIST_REQ="crates/service/fixtures/equiv_batch.req"
trap 'rm -f "$RAW"; rm -rf "$PERSIST_DIR"' EXIT
cache_line() { grep -E '^cache:' | sed -n 's/^cache: \([0-9]*\) hits, \([0-9]*\) misses.*/\1 \2/p'; }
read -r COLD_HITS COLD_MISSES <<< "$(cargo run -q --release -p eqsql-net --bin eqsql-serve -- \
    --quiet --cache-dir "$PERSIST_DIR/a" "$PERSIST_REQ" | cache_line)"
read -r RESTART_HITS RESTART_MISSES <<< "$(cargo run -q --release -p eqsql-net --bin eqsql-serve -- \
    --quiet --cache-dir "$PERSIST_DIR/a" "$PERSIST_REQ" | cache_line)"
# --repeat 2 reports cumulative counters; the deterministic cold run above
# is the first-run baseline to subtract.
read -r TOTAL_HITS TOTAL_MISSES <<< "$(cargo run -q --release -p eqsql-net --bin eqsql-serve -- \
    --quiet --repeat 2 --cache-dir "$PERSIST_DIR/b" "$PERSIST_REQ" | cache_line)"
WARM_HITS=$((TOTAL_HITS - COLD_HITS))
WARM_MISSES=$((TOTAL_MISSES - COLD_MISSES))
PERSIST_JSON="$(jq -n \
    --argjson ch "$COLD_HITS" --argjson cm "$COLD_MISSES" \
    --argjson rh "$RESTART_HITS" --argjson rm "$RESTART_MISSES" \
    --argjson wh "$WARM_HITS" --argjson wm "$WARM_MISSES" '
  {
    workload: "equiv_batch.req",
    cold: {hits: $ch, misses: $cm, hit_rate: (($ch / ($ch + $cm) * 1000 | round) / 1000)},
    restart_warm: {hits: $rh, misses: $rm, hit_rate: (($rh / ($rh + $rm) * 1000 | round) / 1000)},
    same_process_warm: {hits: $wh, misses: $wm, hit_rate: (($wh / ($wh + $wm) * 1000 | round) / 1000)}
  }')"
# Acceptance: a restarted server must warm up like a surviving one.
echo "$PERSIST_JSON" | jq -e \
    '(.restart_warm.hit_rate - .same_process_warm.hit_rate) | (if . < 0 then -. else . end) <= 0.05' >/dev/null \
    || { echo "persist: restart hit rate strays >5% from same-process warm:" >&2; \
         echo "$PERSIST_JSON" | jq . >&2; exit 1; }

# Request latencies under load through the loadgen harness (closed loop
# cold/warm + open loop at a target rate), instrumentation left off so
# snapshot-to-snapshot deltas bound the disabled observability overhead.
LATENCY_JSON="$(cargo run -q --release -p eqsql-bench --bin loadgen -- \
    --workers 4 --qps 300 "$PERSIST_REQ")"

# The same workload over a real socket: an `eqsql-serve --listen` server
# on an ephemeral loopback port, the verb lines replayed over 4 client
# connections by `loadgen --connect`, then a graceful drain. The p50/p99
# deltas against the in-process `latency` key above bound the wire cost.
NET_LOG="$(mktemp)"
trap 'rm -f "$RAW" "$NET_LOG"; rm -rf "$PERSIST_DIR"' EXIT
cargo run -q --release -p eqsql-net --bin eqsql-serve -- \
    --quiet --listen 127.0.0.1:0 "$PERSIST_REQ" > "$NET_LOG" 2>/dev/null &
NET_PID=$!
NET_ADDR=""
for _ in $(seq 1 100); do
    NET_ADDR="$(sed -n 's/^listening on //p' "$NET_LOG")"
    [ -n "$NET_ADDR" ] && break
    kill -0 "$NET_PID" 2>/dev/null \
        || { echo "bench: --listen server died before listening" >&2; exit 1; }
    sleep 0.1
done
[ -n "$NET_ADDR" ] || { echo "bench: --listen server never came up" >&2; exit 1; }
NET_JSON="$(cargo run -q --release -p eqsql-bench --bin loadgen -- \
    --workers 4 --qps 300 --connect "$NET_ADDR" --drain "$PERSIST_REQ")"
wait "$NET_PID" || { echo "bench: drained --listen server exited nonzero" >&2; exit 1; }

# Acceptance: against the previously committed snapshot, neither the
# engine (`set_chase`) nor the search layer (`hom_search`) may lose more
# than 5% of its speedup over the frozen reference drivers. Absolute
# medians are gated *relative to the reference cases' drift*: the naive
# drivers haven't changed since PR 1, so any wall-clock shift they show
# between snapshots is the host (load, thermal state, neighbors), not the
# code — observed swings of 1.1–1.6x on the same tree. Per contender case
# the gate therefore takes (new/old) ÷ (new_ref/old_ref) and requires the
# median over cases to stay ≤ 1.05: a code change that slows only the
# optimized path still fails, a slow host day does not.
gate_family() {
    local family="$1" contender_re="$2" ref_re="$3" ref_to="$4"
    local ratio
    ratio="$(jq -s --slurpfile prev "$OUT" \
        --arg con "$contender_re" --arg refre "$ref_re" --arg refto "$ref_to" '
        ($prev[0].cases // [] | map({key: .id, value: .median_ns}) | from_entries) as $old |
        (map({key: .id, value: .median_ns}) | from_entries) as $new |
        [ $new | keys_unsorted[] | select(test($con)) | . as $c
          | ($c | sub($refre; $refto)) as $r
          | select($old[$c] != null and $old[$r] != null and $new[$r] != null)
          | ($new[$c] / $old[$c]) / ($new[$r] / $old[$r]) ]
        | sort | if length == 0 then null else .[(length - 1) / 2 | floor] end
    ' "$RAW")"
    if [ -n "$ratio" ] && [ "$ratio" != "null" ]; then
        echo "overhead gate: $family median reference-normalized ratio vs committed snapshot: $ratio"
        jq -en --argjson r "$ratio" '$r <= 1.05' >/dev/null \
            || { echo "bench: $family lost >5% of its speedup over the reference driver (ratio $ratio)" >&2; \
                 exit 1; }
    fi
}
if [ -f "$OUT" ]; then
    gate_family "set_chase" '^chase_scaling/.*/set_chase/' '/set_chase/' '/set_chase_reference/'
    gate_family "hom_search" '^hom_search/.*/(planned|delta|indexed)/' '/(planned|delta|indexed)/' '/reference/'
fi

jq -s --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" --arg samples "$SAMPLES" \
    --argjson persist "$PERSIST_JSON" --argjson latency "$LATENCY_JSON" \
    --argjson net "$NET_JSON" '
  {
    generated: $date,
    samples_per_case: ($samples | tonumber),
    cases: map({id, median_ns, samples, iters_per_sample}),
    speedups: (
      group_by(.id | sub("/set_chase(_reference)?/"; "/")) | map(
        select(length == 2) |
        (map(select(.id | contains("set_chase_reference"))) | first) as $ref |
        (map(select(.id | contains("set_chase/"))) | first) as $idx |
        select($ref != null and $idx != null) |
        {
          case: ($idx.id | sub("/set_chase/"; "/")),
          indexed_median_ns: $idx.median_ns,
          reference_median_ns: $ref.median_ns,
          speedup: (($ref.median_ns / $idx.median_ns * 100 | round) / 100)
        }
      )
    ),
    hom_search: (
      map(select(.id | startswith("hom_search/")))
      | group_by(.id | sub("/(planned|delta|indexed|reference)/"; "/")) | map(
        (map(select(.id | contains("/reference/"))) | first) as $ref |
        select($ref != null) |
        {
          case: ($ref.id | sub("/reference/"; "/")),
          reference_median_ns: $ref.median_ns,
          contenders: (
            map(select(.id | contains("/reference/") | not)) | map({
              id,
              median_ns,
              speedup: (($ref.median_ns / .median_ns * 100 | round) / 100)
            })
          )
        }
      )
    ),
    arena: (
      map(select(.id | startswith("arena/")))
      | group_by(.id | sub("/(columnar|boxed)/"; "/")) | map(
        select(length == 2) |
        (map(select(.id | contains("/columnar/"))) | first) as $col |
        (map(select(.id | contains("/boxed/"))) | first) as $box |
        select($col != null and $box != null) |
        {
          case: ($col.id | sub("/columnar/"; "/")),
          columnar_median_ns: $col.median_ns,
          boxed_median_ns: $box.median_ns,
          speedup: (($box.median_ns / $col.median_ns * 100 | round) / 100)
        }
      )
    ),
    persist: ($persist + {
      bench: (
        map(select(.id | startswith("persist/")))
        | map({id, median_ns})
      )
    }),
    latency: $latency,
    net: $net,
    batch_speedups: (
      map(select(.id | startswith("equiv_batch/")))
      | group_by(.id | sub("/(cold|warm)/"; "/")) | map(
        select(length == 2) |
        (map(select(.id | contains("/cold/"))) | first) as $cold |
        (map(select(.id | contains("/warm/"))) | first) as $warm |
        select($cold != null and $warm != null) |
        {
          case: ($warm.id | sub("/warm/"; "/")),
          cold_median_ns: $cold.median_ns,
          warm_median_ns: $warm.median_ns,
          warm_speedup: (($cold.median_ns / $warm.median_ns * 100 | round) / 100)
        }
      )
    )
  }' "$RAW" > "$OUT"

echo "wrote $OUT"
jq -r '.speedups[] | "\(.case): \(.speedup)x (indexed \(.indexed_median_ns)ns vs reference \(.reference_median_ns)ns)"' "$OUT"
jq -r '.batch_speedups[] | "\(.case): warm cache \(.warm_speedup)x (cold \(.cold_median_ns)ns vs warm \(.warm_median_ns)ns)"' "$OUT"
jq -r '.hom_search[] | .case as $c | .contenders[] | "\($c): \(.id | sub(".*/(?<k>[a-z]+)/.*"; "\(.k)")) \(.speedup)x vs reference"' "$OUT"
jq -r '.arena[] | "\(.case): columnar \(.speedup)x (columnar \(.columnar_median_ns)ns vs boxed \(.boxed_median_ns)ns)"' "$OUT"
jq -r '.persist | "persist: cold \(.cold.hit_rate) -> restart \(.restart_warm.hit_rate) vs same-process \(.same_process_warm.hit_rate) hit rate"' "$OUT"
jq -r '.latency | "latency: closed cold p50 \(.closed.cold.p50_us)us / p99 \(.closed.cold.p99_us)us @ \(.closed.cold.achieved_qps) qps; closed warm p50 \(.closed.warm.p50_us)us / p99 \(.closed.warm.p99_us)us @ \(.closed.warm.achieved_qps) qps; open warm achieved \(.open.warm.achieved_qps) of \(.open.target_qps) qps target"' "$OUT"
jq -r '.net | "net: closed warm p50 \(.closed.warm.p50_us)us / p99 \(.closed.warm.p99_us)us @ \(.closed.warm.achieved_qps) qps over \(.workers) connections; open warm achieved \(.open.warm.achieved_qps) of \(.open.target_qps) qps target"' "$OUT"
