#!/usr/bin/env bash
# The repo's verify path: tier-1 (build + tests) plus compile checks for
# everything tier-1 does not reach — benches (so they cannot silently rot)
# and the examples/experiments binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (cargo fmt --check)"
cargo fmt --check

echo "== tier-1: cargo build --release"
cargo build --release -q

echo "== tier-1: cargo test"
cargo test -q

echo "== benches compile (cargo bench --no-run)"
cargo bench --no-run -q

echo "== examples + experiments binaries compile"
cargo build -q -p eqsql-examples -p eqsql-bench -p eqsql-service --bins

echo "== eqsql-serve smoke (batched Σ-equivalence on the committed fixture)"
SERVE_OUT="$(cargo run -q -p eqsql-service --bin eqsql-serve -- \
    --threads 2 --repeat 2 crates/service/fixtures/smoke.req)"
echo "$SERVE_OUT" | sed 's/^/  /'
echo "$SERVE_OUT" | grep -q "batch: 6 pairs (4 equivalent, 2 not, 0 unknown)" \
    || { echo "eqsql-serve smoke: unexpected verdicts" >&2; exit 1; }

echo "verify: OK"
