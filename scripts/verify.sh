#!/usr/bin/env bash
# The repo's verify path: tier-1 (build + tests) plus compile checks for
# everything tier-1 does not reach — benches (so they cannot silently rot)
# and the examples/experiments binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release -q

echo "== tier-1: cargo test"
cargo test -q

echo "== benches compile (cargo bench --no-run)"
cargo bench --no-run -q

echo "== examples + experiments binaries compile"
cargo build -q -p eqsql-examples -p eqsql-bench --bins

echo "verify: OK"
