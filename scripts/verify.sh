#!/usr/bin/env bash
# The repo's verify path: tier-1 (build + tests) plus compile checks for
# everything tier-1 does not reach — benches (so they cannot silently rot),
# the examples/experiments binaries, and rustdoc with warnings denied (so
# the Solver facade's public API stays documented).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (cargo fmt --check)"
cargo fmt --check

echo "== tier-1: cargo build --release"
cargo build --release -q

echo "== tier-1: cargo test"
cargo test -q

echo "== rustdoc clean (cargo doc --no-deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== benches compile (cargo bench --no-run)"
cargo bench --no-run -q

echo "== examples + experiments binaries compile"
cargo build -q -p eqsql-examples -p eqsql-bench -p eqsql-net --bins

echo "== eqsql-serve smoke (full verb family on the committed fixture)"
SERVE_OUT="$(cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --threads 2 --repeat 2 crates/service/fixtures/smoke.req)"
echo "$SERVE_OUT" | sed 's/^/  /'
echo "$SERVE_OUT" | grep -q "batch: 13 requests (7 positive, 6 other, 0 errors)" \
    || { echo "eqsql-serve smoke: unexpected verdicts" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-minimal" \
    || { echo "eqsql-serve smoke: minimality verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "reformulation(s)" \
    || { echo "eqsql-serve smoke: cnb verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-implied" \
    || { echo "eqsql-serve smoke: implies verb missing" >&2; exit 1; }

echo "== observability smoke (--metrics --trace over the committed fixture)"
TRACE_FILE="$(mktemp)"
OBS_OUT="$(cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --quiet --metrics --trace "$TRACE_FILE" --threads 2 crates/service/fixtures/smoke.req)"
echo "$OBS_OUT" | grep -E '^metric:' | sed 's/^/  /'
echo "$OBS_OUT" | grep -q '^metric: latency count=13 ' \
    || { echo "obs smoke: latency metric missing or not 13 samples" >&2; exit 1; }
echo "$OBS_OUT" | grep -Eq '^metric: phase queue_us=[0-9]+ regularize_us=[0-9]+ chase_us=[0-9]+ cache_us=[0-9]+ evidence_us=[0-9]+$' \
    || { echo "obs smoke: phase metric line missing" >&2; exit 1; }
# Exactly one structured event per request, each with non-negative phase
# timings that sum to at most the request's wall time.
[ "$(grep -c '^event=request ' "$TRACE_FILE")" -eq 13 ] \
    || { echo "obs smoke: expected 13 request events in the trace" >&2; exit 1; }
awk '
  {
    delete kv
    for (i = 1; i <= NF; i++) { n = index($i, "="); kv[substr($i, 1, n - 1)] = substr($i, n + 1) }
    sum = 0
    split("queue_us regularize_us chase_us cache_us evidence_us", phases, " ")
    for (p in phases) {
      if (kv[phases[p]] !~ /^[0-9]+$/) { print "trace event missing " phases[p] ": " $0; exit 1 }
      sum += kv[phases[p]]
    }
    if (kv["wall_us"] !~ /^[0-9]+$/ || sum > kv["wall_us"] + 0) {
      print "trace event phase sum " sum " exceeds wall " kv["wall_us"] ": " $0; exit 1
    }
    if (kv["attempts"] + 0 < 1) { print "trace event without attempts: " $0; exit 1 }
  }
' "$TRACE_FILE" || { echo "obs smoke: malformed trace event" >&2; exit 1; }
rm -f "$TRACE_FILE"

echo "== persistence smoke (cold run, then warm restart over the same --cache-dir)"
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
COLD_OUT="$(cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --cache-dir "$CACHE_DIR" crates/service/fixtures/smoke.req)"
WARM_OUT="$(cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --cache-dir "$CACHE_DIR" crates/service/fixtures/smoke.req)"
# Verdicts (everything except the run-local stats lines) must be identical
# across the restart: the disk tier may change *how* an answer is computed,
# never the answer.
strip_stats() { grep -Ev '^(cache|persist|timing|backpressure):' || true; }
diff <(echo "$COLD_OUT" | strip_stats) <(echo "$WARM_OUT" | strip_stats) \
    || { echo "persist smoke: warm restart changed a verdict" >&2; exit 1; }
echo "$WARM_OUT" | grep -E '^persist:' | sed 's/^/  /'
# The restarted process must have admitted the first run's log and served
# real cache hits from it.
echo "$WARM_OUT" | grep -Eq '^cache: [1-9][0-9]* hits' \
    || { echo "persist smoke: restarted run served no cache hits" >&2; exit 1; }
echo "$WARM_OUT" | grep -Eq '^persist: .* [1-9][0-9]* disk hits' \
    || { echo "persist smoke: restarted run served no disk hits" >&2; exit 1; }
if echo "$WARM_OUT" | grep -Eq '^persist: .*io errors'; then
    echo "persist smoke: io errors reported" >&2; exit 1
fi
# A read-only replica over the same directory must leave the log untouched.
LOG_BYTES_BEFORE="$(wc -c < "$CACHE_DIR/log.eqc")"
cargo run -q -p eqsql-net --bin eqsql-serve -- --quiet \
    --cache-dir "$CACHE_DIR" --cache-read-only crates/service/fixtures/smoke.req >/dev/null
[ "$(wc -c < "$CACHE_DIR/log.eqc")" -eq "$LOG_BYTES_BEFORE" ] \
    || { echo "persist smoke: read-only replica wrote to the log" >&2; exit 1; }

echo "== fault-injection smoke (expired deadline fails every verdict, never cached)"
# --deadline-ms 0 means "already expired": every request must come back
# error (deadline exceeded), deterministically — no timing races.
FAULT_OUT="$(cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --deadline-ms 0 crates/service/fixtures/smoke.req)"
echo "$FAULT_OUT" | grep -q "batch: 13 requests (0 positive, 0 other, 13 errors)" \
    || { echo "fault smoke: expected all 13 verdicts to fail" >&2; exit 1; }
[ "$(echo "$FAULT_OUT" | grep -c "error (deadline exceeded")" -eq 13 ] \
    || { echo "fault smoke: expected 13 deadline-exceeded verdicts" >&2; exit 1; }
# --strict must turn the error verdicts into a nonzero exit.
if cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --strict --quiet --deadline-ms 0 crates/service/fixtures/smoke.req >/dev/null 2>&1; then
    echo "fault smoke: --strict should exit nonzero on error verdicts" >&2; exit 1
fi
# And the default run above already proved the same file decides cleanly
# (13 requests, 0 errors) when unguarded — expired runs were not cached.

echo "== net smoke (eqsql-serve --listen, two concurrent clients, graceful drain)"
NET_LOG="$(mktemp)"
trap 'rm -rf "$CACHE_DIR"; rm -f "$NET_LOG"' EXIT
cargo run -q -p eqsql-net --bin eqsql-serve -- \
    --threads 2 --listen 127.0.0.1:0 crates/service/fixtures/smoke.req > "$NET_LOG" 2>&1 &
NET_PID=$!
NET_ADDR=""
for _ in $(seq 1 100); do
    NET_ADDR="$(sed -n 's/^listening on //p' "$NET_LOG")"
    [ -n "$NET_ADDR" ] && break
    kill -0 "$NET_PID" 2>/dev/null \
        || { cat "$NET_LOG" >&2; echo "net smoke: server died before listening" >&2; exit 1; }
    sleep 0.1
done
[ -n "$NET_ADDR" ] \
    || { cat "$NET_LOG" >&2; echo "net smoke: server never reported its address" >&2; exit 1; }
NET_OUT="$(cargo run -q -p eqsql-net --bin netdrive -- \
    --clients 2 --stats --drain "$NET_ADDR" crates/service/fixtures/smoke.req)"
echo "$NET_OUT" | sed 's/^/  /'
# The socket path must split the fixture exactly like file mode does.
echo "$NET_OUT" | grep -q "split: 7 positive, 6 other, 0 errors (13 verdicts over 2 client(s))" \
    || { echo "net smoke: socket verdicts diverge from file mode" >&2; exit 1; }
echo "$NET_OUT" | grep -q "^stats: ok" \
    || { echo "net smoke: stats verb returned missing or invalid JSON" >&2; exit 1; }
# The drain must let the server exit cleanly with its final accounting.
wait "$NET_PID" \
    || { cat "$NET_LOG" >&2; echo "net smoke: drained server exited nonzero" >&2; exit 1; }
grep -Eq '^net: 3 connection\(s\) accepted, 0 rejected, 13 request\(s\) served' "$NET_LOG" \
    || { cat "$NET_LOG" >&2; echo "net smoke: final net accounting line wrong" >&2; exit 1; }

echo "verify: OK"
