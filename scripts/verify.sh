#!/usr/bin/env bash
# The repo's verify path: tier-1 (build + tests) plus compile checks for
# everything tier-1 does not reach — benches (so they cannot silently rot),
# the examples/experiments binaries, and rustdoc with warnings denied (so
# the Solver facade's public API stays documented).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (cargo fmt --check)"
cargo fmt --check

echo "== tier-1: cargo build --release"
cargo build --release -q

echo "== tier-1: cargo test"
cargo test -q

echo "== rustdoc clean (cargo doc --no-deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== benches compile (cargo bench --no-run)"
cargo bench --no-run -q

echo "== examples + experiments binaries compile"
cargo build -q -p eqsql-examples -p eqsql-bench -p eqsql-service --bins

echo "== eqsql-serve smoke (full verb family on the committed fixture)"
SERVE_OUT="$(cargo run -q -p eqsql-service --bin eqsql-serve -- \
    --threads 2 --repeat 2 crates/service/fixtures/smoke.req)"
echo "$SERVE_OUT" | sed 's/^/  /'
echo "$SERVE_OUT" | grep -q "batch: 13 requests (7 positive, 6 other, 0 errors)" \
    || { echo "eqsql-serve smoke: unexpected verdicts" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-minimal" \
    || { echo "eqsql-serve smoke: minimality verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "reformulation(s)" \
    || { echo "eqsql-serve smoke: cnb verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-implied" \
    || { echo "eqsql-serve smoke: implies verb missing" >&2; exit 1; }

echo "verify: OK"
