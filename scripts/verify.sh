#!/usr/bin/env bash
# The repo's verify path: tier-1 (build + tests) plus compile checks for
# everything tier-1 does not reach — benches (so they cannot silently rot),
# the examples/experiments binaries, and rustdoc with warnings denied (so
# the Solver facade's public API stays documented).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (cargo fmt --check)"
cargo fmt --check

echo "== tier-1: cargo build --release"
cargo build --release -q

echo "== tier-1: cargo test"
cargo test -q

echo "== rustdoc clean (cargo doc --no-deps, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== benches compile (cargo bench --no-run)"
cargo bench --no-run -q

echo "== examples + experiments binaries compile"
cargo build -q -p eqsql-examples -p eqsql-bench -p eqsql-service --bins

echo "== eqsql-serve smoke (full verb family on the committed fixture)"
SERVE_OUT="$(cargo run -q -p eqsql-service --bin eqsql-serve -- \
    --threads 2 --repeat 2 crates/service/fixtures/smoke.req)"
echo "$SERVE_OUT" | sed 's/^/  /'
echo "$SERVE_OUT" | grep -q "batch: 13 requests (7 positive, 6 other, 0 errors)" \
    || { echo "eqsql-serve smoke: unexpected verdicts" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-minimal" \
    || { echo "eqsql-serve smoke: minimality verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "reformulation(s)" \
    || { echo "eqsql-serve smoke: cnb verb missing" >&2; exit 1; }
echo "$SERVE_OUT" | grep -q "not-implied" \
    || { echo "eqsql-serve smoke: implies verb missing" >&2; exit 1; }

echo "== fault-injection smoke (expired deadline fails every verdict, never cached)"
# --deadline-ms 0 means "already expired": every request must come back
# error (deadline exceeded), deterministically — no timing races.
FAULT_OUT="$(cargo run -q -p eqsql-service --bin eqsql-serve -- \
    --deadline-ms 0 crates/service/fixtures/smoke.req)"
echo "$FAULT_OUT" | grep -q "batch: 13 requests (0 positive, 0 other, 13 errors)" \
    || { echo "fault smoke: expected all 13 verdicts to fail" >&2; exit 1; }
[ "$(echo "$FAULT_OUT" | grep -c "error (deadline exceeded")" -eq 13 ] \
    || { echo "fault smoke: expected 13 deadline-exceeded verdicts" >&2; exit 1; }
# --strict must turn the error verdicts into a nonzero exit.
if cargo run -q -p eqsql-service --bin eqsql-serve -- \
    --strict --quiet --deadline-ms 0 crates/service/fixtures/smoke.req >/dev/null 2>&1; then
    echo "fault smoke: --strict should exit nonzero on error verdicts" >&2; exit 1
fi
# And the default run above already proved the same file decides cleanly
# (13 requests, 0 errors) when unguarded — expired runs were not cached.

echo "verify: OK"
