//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's test suites
//! use — the [`Strategy`] trait with `prop_map`, integer-range and tuple
//! strategies, [`collection::vec`], [`any`], [`prelude::proptest!`] with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros — on top of the vendored deterministic `rand`.
//!
//! Differences from real proptest, deliberate for hermetic builds:
//!
//! * **no shrinking** — a failing case reports its deterministic case
//!   index so it can be replayed, but is not minimized;
//! * **deterministic runs** — case `i` of a test is always generated from
//!   seed `i`, so failures reproduce across runs and machines;
//! * rejected cases (`prop_assume!`) are retried with fresh seeds, up to
//!   a global cap per test.

use rand::rngs::StdRng;

/// The rng handed to strategies.
pub type TestRng = StdRng;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` — try another input.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Maximum rejected cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy yielding one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Full-range strategies for primitives, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore as _;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, i64, i32, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore as _;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `elem` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

/// Drives one property test. Called by the expansion of [`proptest!`].
pub fn run_property_test<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng as _;
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut seed = 0u64;
    while accepted < config.cases {
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many rejected inputs ({rejected}) — \
                         prop_assume! conditions are too strict"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case with seed {seed} failed (replay: deterministic): {msg}");
            }
        }
        seed += 1;
    }
}

/// Declares property-based tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property_test(&config, stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                #[allow(unused_mut)]
                let mut inner = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                inner()
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq! failed: {:?} != {:?} ({} vs {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l != *r, "prop_assert_ne! failed: both sides equal {:?}", l);
    }};
}

/// Rejects the current case (it is retried with a fresh input) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        use rand::SeedableRng as _;
        let mut rng = crate::TestRng::seed_from_u64(9);
        let strat = (0usize..3, crate::collection::vec(0i64..4, 2), 1u64..3);
        for _ in 0..200 {
            let (a, v, c) = crate::Strategy::generate(&strat, &mut rng);
            assert!(a < 3);
            assert_eq!(v.len(), 2);
            assert!(v.iter().all(|x| (0..4).contains(x)));
            assert!((1..3).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself: generation, mapping, assume, assert.
        fn macro_roundtrip(x in 0usize..10, y in any::<u64>()) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            prop_assert_eq!(x + 1, x + 1);
            let _ = y;
        }
    }

    proptest! {
        /// Default config path.
        fn default_config_runs(v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
