//! Offline stand-in for the `criterion` crate.
//!
//! Hermetic build environments cannot fetch crates.io, so this crate
//! reimplements the slice of the criterion API the workspace's benches
//! use: `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`]/[`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`Throughput`], and [`Bencher::iter`].
//!
//! Methodology: per benchmark it auto-calibrates an iteration count so one
//! sample lasts ≥ ~2 ms, collects `sample_size` samples (wall-clock,
//! per-iteration), and reports the **median**. Two environment variables
//! integrate with `scripts/bench_snapshot.sh`:
//!
//! * `BENCH_SAMPLES` — override every group's sample size;
//! * `BENCH_JSON_OUT` — append one JSON line
//!   `{"id": ..., "median_ns": ..., "samples": ...}` per benchmark to the
//!   given file.
//!
//! A positional command-line argument acts as a substring filter on
//! benchmark ids (flags such as `--bench` that cargo passes are ignored).

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Minimum measured time per sample before trusting a reading.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// An identifier `function/parameter` within a benchmark group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Throughput annotation (recorded, displayed, otherwise inert).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing callback handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (results are black-boxed).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let sample_size =
            std::env::var("BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        Criterion { filter, sample_size }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Runs a stand-alone benchmark (treated as a group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.name.clone());
        g.bench_function(BenchmarkId::from_parameter(""), f);
        g.finish();
    }

    /// Printed by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}

    fn run_one<F>(&self, full_id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = if self.sample_size > 0 { self.sample_size } else { sample_size };

        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least TARGET_SAMPLE_TIME (capped for very slow cases).
        let mut iters: u64 = 1;
        let mut calib = Bencher { iters, elapsed: Duration::ZERO };
        loop {
            f(&mut calib);
            if calib.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            let grow = if calib.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE_TIME.as_nanos() / calib.elapsed.as_nanos().max(1)).max(2) as u64
            };
            iters = iters.saturating_mul(grow).min(1 << 20);
            calib.iters = iters;
        }

        let mut per_iter_ns: Vec<u128> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() / u128::from(iters.max(1)));
        }
        per_iter_ns.sort_unstable();
        let median = per_iter_ns[per_iter_ns.len() / 2];
        println!(
            "{full_id:<60} median {:>12}  ({} samples x {} iters)",
            format_ns(median),
            per_iter_ns.len(),
            iters
        );

        if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"id\": \"{}\", \"median_ns\": {}, \"samples\": {}, \"iters_per_sample\": {}}}\n",
                    full_id.replace('"', "'"),
                    median,
                    per_iter_ns.len(),
                    iters
                );
                if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
                    let _ = file.write_all(line.as_bytes());
                }
            }
        }
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into().name);
        self.criterion.run_one(&full_id, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = if id.name.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        self.criterion.run_one(&full_id, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Re-exported for closures that want explicit black-boxing.
pub use std::hint::black_box;

/// Declares a set of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(2 + 2));
        assert!(b.elapsed > Duration::ZERO || b.elapsed == Duration::ZERO); // ran without panic
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert!(format_ns(1_500).contains("us"));
        assert!(format_ns(2_000_000).contains("ms"));
        assert!(format_ns(3_000_000_000).contains(" s"));
    }
}
