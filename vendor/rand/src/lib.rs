//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the subset of the rand 0.8 API the workspace consumes is
//! reimplemented here: [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! and [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — determinism
//! per seed is the only property the test/gen suites rely on (statistical
//! quality is far beyond what symbolic-query fuzzing needs). Streams are
//! stable across runs and platforms but are NOT the streams of the real
//! `StdRng`; all consumers in this workspace treat seeds as opaque.

/// A source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of rngs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the rng from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

mod sample {
    /// Integer types that can be sampled uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample in `[lo, hi)` (`hi > lo`).
        fn sample_half_open(rng_word: impl FnMut() -> u64, lo: Self, hi: Self) -> Self;
        /// The successor, for inclusive ranges. `None` on overflow.
        fn successor(self) -> Option<Self>;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open(
                    mut rng_word: impl FnMut() -> u64,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    debug_assert!(lo < hi);
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    // Debiased multiply-shift (Lemire); span is tiny in
                    // this workspace, a single rejection loop is cheap.
                    let zone = u64::MAX - (u64::MAX % span.max(1));
                    loop {
                        let w = rng_word();
                        if w < zone || span == 0 {
                            return ((lo as $wide).wrapping_add((w % span.max(1)) as $wide))
                                as $t;
                        }
                    }
                }

                fn successor(self) -> Option<Self> {
                    self.checked_add(1)
                }
            }
        )*};
    }

    impl_sample_uniform!(usize => u128, u64 => u128, u32 => u64, i64 => i128, i32 => i64, u8 => u16);
}

pub use sample::SampleUniform;

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng_word: impl FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng_word: impl FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng_word, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng_word: impl FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        match hi.successor() {
            Some(hi1) => T::sample_half_open(rng_word, lo, hi1),
            // hi == T::MAX and lo == MIN cannot happen for the workspace's
            // tiny ranges; fall back to the closed interval minus nothing.
            None => T::sample_half_open(rng_word, lo, hi),
        }
    }
}

/// The user-facing random-sampling interface.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(|| self.next_u64())
    }

    /// `true` with probability `p` (`0.0 <= p <= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random bits into [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the workspace's deterministic
    /// standard rng (API stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state (never all-zero).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next() | 1] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3i64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
